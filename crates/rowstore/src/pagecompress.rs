//! PAGE compression: the row-store compression baseline.
//!
//! SQL Server's PAGE compression applies, per page: (1) row compression
//! (minimal-width cells — see [`crate::rowcodec::cell_image`]), (2) prefix
//! compression (per column, cells share a common byte prefix stored once),
//! and (3) dictionary compression (repeated cell suffixes across the page
//! stored once and referenced). This module reproduces that pipeline over
//! logical pages of rows so E1 can report "PAGE compression" sizes next to
//! columnstore sizes, and decodes pages back for correctness tests.

use cstore_common::{Error, FxHashMap, Result, Row, Schema, Value};

/// Rows per compressed page. A real page is 8 KiB; compressed cells are a
/// few bytes, so ~200 rows per page mirrors real occupancy for warehouse
/// rows.
pub const ROWS_PER_PAGE: usize = 200;
/// Per-page header allowance (mirrors the slotted-page header plus the
/// compression-information record).
const PAGE_HEADER_BYTES: usize = 96;
/// Per-cell descriptor cost: 4 bits of length/ref metadata.
const CELL_DESCRIPTOR_BITS: usize = 4;

/// One PAGE-compressed page.
struct CompressedPage {
    /// Per column: the shared prefix.
    prefixes: Vec<Vec<u8>>,
    /// Page dictionary: distinct suffixes referenced more than once.
    dictionary: Vec<Vec<u8>>,
    /// Per row, per column: the encoded cell.
    cells: Vec<Vec<Cell>>,
}

enum Cell {
    Null,
    /// Suffix stored inline (after the column prefix).
    Inline(Vec<u8>),
    /// Suffix stored in the page dictionary.
    DictRef(u16),
}

/// A heap table stored with PAGE compression.
pub struct CompressedHeapTable {
    schema: Schema,
    pages: Vec<CompressedPage>,
    n_rows: usize,
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl CompressedHeapTable {
    /// Build from rows (PAGE compression is applied when a page fills).
    pub fn build(schema: Schema, rows: &[Row]) -> Result<Self> {
        for row in rows {
            schema.check_row(row)?;
        }
        let mut pages = Vec::with_capacity(rows.len().div_ceil(ROWS_PER_PAGE));
        for chunk in rows.chunks(ROWS_PER_PAGE) {
            pages.push(Self::compress_page(&schema, chunk));
        }
        Ok(CompressedHeapTable {
            schema,
            pages,
            n_rows: rows.len(),
        })
    }

    fn compress_page(schema: &Schema, rows: &[Row]) -> CompressedPage {
        let n_cols = schema.len();
        // Row-compress every cell.
        let images: Vec<Vec<Option<Vec<u8>>>> = rows
            .iter()
            .map(|row| {
                (0..n_cols)
                    .map(|c| crate::rowcodec::cell_image(schema.field(c).data_type, row.get(c)))
                    .collect()
            })
            .collect();
        // Prefix per column: longest prefix common to all non-null cells
        // (only worthwhile if at least 2 cells share it; a single value's
        // "prefix" would just move bytes around).
        let mut prefixes: Vec<Vec<u8>> = Vec::with_capacity(n_cols);
        for c in 0..n_cols {
            let mut iter = images.iter().filter_map(|r| r[c].as_deref());
            let prefix = match iter.next() {
                Some(first) => {
                    let mut p = first.to_vec();
                    for img in iter {
                        let l = common_prefix_len(&p, img);
                        p.truncate(l);
                        if p.is_empty() {
                            break;
                        }
                    }
                    p
                }
                None => Vec::new(),
            };
            prefixes.push(prefix);
        }
        // Dictionary: suffixes (post-prefix) occurring more than once.
        let mut counts: FxHashMap<(usize, Vec<u8>), usize> = FxHashMap::default();
        for row in &images {
            for (c, img) in row.iter().enumerate() {
                if let Some(img) = img {
                    let suffix = img[prefixes[c].len().min(img.len())..].to_vec();
                    // Dictionary entries are shared across columns of the
                    // same byte content in SQL Server; keep them per-column
                    // here for simpler decode (key includes the column).
                    *counts.entry((c, suffix)).or_insert(0) += 1;
                }
            }
        }
        let mut dictionary: Vec<Vec<u8>> = Vec::new();
        let mut dict_index: FxHashMap<(usize, Vec<u8>), u16> = FxHashMap::default();
        for ((c, suffix), n) in counts {
            // Worth a dictionary entry when referencing beats inlining:
            // n copies of the suffix vs one copy + n 2-byte refs.
            if n >= 2
                && suffix.len() * n > suffix.len() + 2 * n
                && dictionary.len() < u16::MAX as usize
            {
                dict_index.insert((c, suffix.clone()), dictionary.len() as u16);
                dictionary.push(suffix);
            }
        }
        // Encode cells.
        let cells: Vec<Vec<Cell>> = images
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .enumerate()
                    .map(|(c, img)| match img {
                        None => Cell::Null,
                        Some(img) => {
                            let suffix = img[prefixes[c].len().min(img.len())..].to_vec();
                            match dict_index.get(&(c, suffix.clone())) {
                                Some(&idx) => Cell::DictRef(idx),
                                None => Cell::Inline(suffix),
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        CompressedPage {
            prefixes,
            dictionary,
            cells,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Compressed size in bytes: what E1 reports for "PAGE compression".
    pub fn compressed_bytes(&self) -> usize {
        let mut total = 0usize;
        for page in &self.pages {
            total += PAGE_HEADER_BYTES;
            total += page.prefixes.iter().map(|p| p.len() + 2).sum::<usize>();
            total += page.dictionary.iter().map(|d| d.len() + 2).sum::<usize>();
            let mut cell_bits = 0usize;
            for row in &page.cells {
                for cell in row {
                    cell_bits += CELL_DESCRIPTOR_BITS;
                    cell_bits += 8 * match cell {
                        Cell::Null => 0,
                        Cell::Inline(s) => s.len() + usize::from(s.len() >= 8),
                        Cell::DictRef(_) => 2,
                    };
                }
            }
            total += cell_bits.div_ceil(8);
        }
        total
    }

    /// Decode everything back (correctness check for the compressor).
    pub fn scan(&self) -> impl Iterator<Item = Result<Row>> + '_ {
        self.pages.iter().flat_map(move |page| {
            page.cells.iter().map(move |cells| {
                let mut values = Vec::with_capacity(cells.len());
                for (c, cell) in cells.iter().enumerate() {
                    let ty = self.schema.field(c).data_type;
                    let v = match cell {
                        Cell::Null => Value::Null,
                        Cell::Inline(suffix) => {
                            let mut img = page.prefixes[c].clone();
                            img.extend_from_slice(suffix);
                            crate::rowcodec::decode_cell(ty, Some(&img))?
                        }
                        Cell::DictRef(idx) => {
                            let suffix = page
                                .dictionary
                                .get(*idx as usize)
                                .ok_or_else(|| Error::Storage("bad dict ref".into()))?;
                            let mut img = page.prefixes[c].clone();
                            img.extend_from_slice(suffix);
                            crate::rowcodec::decode_cell(ty, Some(&img))?
                        }
                    };
                    values.push(v);
                }
                Ok(Row::new(values))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapTable;
    use cstore_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::nullable("city", DataType::Utf8),
            Field::not_null("qty", DataType::Int32),
        ])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int64(1_000_000 + i),
                    if i % 17 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("city-{:03}", i % 20))
                    },
                    Value::Int32((i % 10) as i32),
                ])
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let data = rows(1234);
        let t = CompressedHeapTable::build(schema(), &data).unwrap();
        assert_eq!(t.n_rows(), 1234);
        let got: Vec<Row> = t.scan().collect::<Result<_>>().unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn page_compression_beats_uncompressed() {
        let data = rows(5000);
        let compressed = CompressedHeapTable::build(schema(), &data).unwrap();
        let mut heap = HeapTable::new(schema());
        heap.insert_all(&data).unwrap();
        let c = compressed.compressed_bytes();
        let u = heap.allocated_bytes();
        assert!(c * 2 < u, "page-compressed {c} vs uncompressed {u}");
    }

    #[test]
    fn repeated_values_hit_dictionary() {
        // One distinct string repeated: dictionary should collapse it.
        let data: Vec<Row> = (0..400)
            .map(|i| {
                Row::new(vec![
                    Value::Int64(i),
                    Value::str("same-city-name-every-row"),
                    Value::Int32(0),
                ])
            })
            .collect();
        let t = CompressedHeapTable::build(schema(), &data).unwrap();
        // Bytes per row should be small: id cell + refs, far below the
        // 24-byte string.
        let per_row = t.compressed_bytes() as f64 / 400.0;
        assert!(per_row < 16.0, "bytes/row = {per_row}");
        let got: Vec<Row> = t.scan().collect::<Result<_>>().unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn empty_table() {
        let t = CompressedHeapTable::build(schema(), &[]).unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.compressed_bytes(), 0);
        assert_eq!(t.scan().count(), 0);
    }
}
