//! Slotted pages.
//!
//! The classic row-store page: record bytes grow from the front, the slot
//! array records (offset, length) per record. 8 KiB pages, matching SQL
//! Server.

/// Page capacity in bytes (data + slot array).
pub const PAGE_SIZE: usize = 8192;
/// Bytes of bookkeeping per slot.
const SLOT_BYTES: usize = 4;
/// Fixed page header allowance.
const HEADER_BYTES: usize = 96;

/// One slotted page.
#[derive(Clone, Debug, Default)]
pub struct Page {
    data: Vec<u8>,
    slots: Vec<(u32, u32)>,
}

impl Page {
    pub fn new() -> Self {
        Page::default()
    }

    pub fn n_rows(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Bytes in use (header + data + slots).
    pub fn used_bytes(&self) -> usize {
        HEADER_BYTES + self.data.len() + self.slots.len() * SLOT_BYTES
    }

    /// Free space remaining.
    pub fn free_bytes(&self) -> usize {
        PAGE_SIZE.saturating_sub(self.used_bytes())
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.used_bytes() + len + SLOT_BYTES <= PAGE_SIZE
    }

    /// Append a record, returning its slot number, or `None` if it does
    /// not fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.fits(record.len()) {
            return None;
        }
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(record);
        self.slots.push((offset, record.len() as u32));
        Some((self.slots.len() - 1) as u16)
    }

    /// The record in `slot`, if the slot exists and is live.
    pub fn record(&self, slot: u16) -> Option<&[u8]> {
        let &(off, len) = self.slots.get(slot as usize)?;
        if len == u32::MAX {
            return None; // tombstone
        }
        Some(&self.data[off as usize..(off + len) as usize])
    }

    /// Tombstone a slot (space is not reclaimed until page rebuild).
    pub fn delete(&mut self, slot: u16) -> bool {
        match self.slots.get_mut(slot as usize) {
            Some(s) if s.1 != u32::MAX => {
                *s = (0, u32::MAX);
                true
            }
            _ => false,
        }
    }

    /// Iterate live records as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &(_, len))| len != u32::MAX)
            .map(|(i, &(off, len))| (i as u16, &self.data[off as usize..(off + len) as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.record(s0), Some(&b"hello"[..]));
        assert_eq!(p.record(s1), Some(&b"world!"[..]));
        assert_eq!(p.n_rows(), 2);
    }

    #[test]
    fn fills_up() {
        let mut p = Page::new();
        let rec = [0u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8192 - 96 header over 104 bytes/record ≈ 77 records.
        assert!((70..=80).contains(&n), "fit {n} records");
        assert!(p.free_bytes() < 104);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let s = p.insert(b"x").unwrap();
        assert!(p.delete(s));
        assert!(!p.delete(s));
        assert_eq!(p.record(s), None);
        assert_eq!(p.iter().count(), 0);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
    }
}
