//! Heap tables: the uncompressed row-store baseline.

use cstore_common::{Result, Row, Schema};

use crate::page::{Page, PAGE_SIZE};
use crate::rowcodec;

/// A heap of slotted pages storing fixed-format rows.
#[derive(Clone)]
pub struct HeapTable {
    schema: Schema,
    pages: Vec<Page>,
    n_rows: usize,
}

/// Location of a row in a heap table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapRid {
    pub page: u32,
    pub slot: u16,
}

impl HeapTable {
    pub fn new(schema: Schema) -> Self {
        HeapTable {
            schema,
            pages: Vec::new(),
            n_rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocated bytes (pages are fixed-size on disk).
    pub fn allocated_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Bytes actually holding data.
    pub fn used_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.used_bytes()).sum()
    }

    /// Insert a row at the end of the heap.
    pub fn insert(&mut self, row: &Row) -> Result<HeapRid> {
        self.schema.check_row(row)?;
        let record = rowcodec::encode_fixed(&self.schema, row);
        if self.pages.last().is_none_or(|p| !p.fits(record.len())) {
            self.pages.push(Page::new());
        }
        let page = (self.pages.len() - 1) as u32;
        let slot = self
            .pages
            .last_mut()
            .unwrap()
            .insert(&record)
            .expect("fresh page fits record");
        self.n_rows += 1;
        Ok(HeapRid { page, slot })
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Fetch one row.
    pub fn get(&self, rid: HeapRid) -> Option<Row> {
        let rec = self.pages.get(rid.page as usize)?.record(rid.slot)?;
        rowcodec::decode_fixed(&self.schema, rec).ok()
    }

    /// Delete one row (tombstone).
    pub fn delete(&mut self, rid: HeapRid) -> bool {
        let Some(page) = self.pages.get_mut(rid.page as usize) else {
            return false;
        };
        if page.delete(rid.slot) {
            self.n_rows -= 1;
            true
        } else {
            false
        }
    }

    /// Direct page access (row-mode cursors step pages themselves).
    pub fn page(&self, idx: usize) -> Option<&Page> {
        self.pages.get(idx)
    }

    /// Full scan yielding row ids alongside rows (DML paths need the ids).
    pub fn scan_with_rids(&self) -> impl Iterator<Item = (HeapRid, Row)> + '_ {
        self.pages.iter().enumerate().flat_map(move |(p, page)| {
            page.iter().map(move |(slot, rec)| {
                (
                    HeapRid {
                        page: p as u32,
                        slot,
                    },
                    rowcodec::decode_fixed(&self.schema, rec).expect("valid record"),
                )
            })
        })
    }

    /// Row-at-a-time full scan — the row-mode baseline's access path.
    /// Each row is decoded from its record bytes as it is produced,
    /// faithfully modeling per-row interpretation overhead.
    pub fn scan(&self) -> impl Iterator<Item = Row> + '_ {
        self.pages.iter().flat_map(move |p| {
            p.iter().map(move |(_, rec)| {
                rowcodec::decode_fixed(&self.schema, rec).expect("valid record")
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
        ])
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int64(i), Value::str(format!("name-{i}"))])
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut t = HeapTable::new(schema());
        for i in 0..5000 {
            t.insert(&row(i)).unwrap();
        }
        assert_eq!(t.n_rows(), 5000);
        assert!(t.n_pages() > 10);
        let got: Vec<i64> = t.scan().map(|r| r.get(0).as_i64().unwrap()).collect();
        assert_eq!(got, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn get_and_delete() {
        let mut t = HeapTable::new(schema());
        let rid = t.insert(&row(7)).unwrap();
        assert_eq!(t.get(rid).unwrap().get(0), &Value::Int64(7));
        assert!(t.delete(rid));
        assert!(!t.delete(rid));
        assert_eq!(t.get(rid), None);
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn allocated_ge_used() {
        let mut t = HeapTable::new(schema());
        t.insert_all(&(0..1000).map(row).collect::<Vec<_>>())
            .unwrap();
        assert!(t.allocated_bytes() >= t.used_bytes());
    }

    #[test]
    fn schema_enforced() {
        let mut t = HeapTable::new(schema());
        assert!(t.insert(&Row::new(vec![Value::Int64(1)])).is_err());
    }
}
