//! Row serialization for the row store.
//!
//! Two codecs:
//!
//! * **fixed** — every value at its type's full width plus a NULL bitmap
//!   (SQL Server's classic uncompressed record format, simplified);
//! * **compressed** — SQL Server "row compression": integers shrink to
//!   their minimal byte length, strings drop trailing padding (ours are
//!   already unpadded), every cell carries a 1-byte length. This is the
//!   cell image that PAGE compression builds on.

use cstore_common::{Bitmap, DataType, Error, Result, Row, Schema, Value};
use cstore_storage::format::{Reader, Writer};

/// Serialize a row at full width (uncompressed record format).
pub fn encode_fixed(schema: &Schema, row: &Row) -> Vec<u8> {
    let mut nulls = Bitmap::zeros(schema.len());
    for (i, v) in row.values().iter().enumerate() {
        if v.is_null() {
            nulls.set(i);
        }
    }
    let mut w = Writer::new();
    for &word in nulls.words() {
        w.u64(word);
    }
    for (i, v) in row.values().iter().enumerate() {
        match schema.field(i).data_type {
            DataType::Bool => w.u8(v.as_bool().unwrap_or(false) as u8),
            DataType::Int32 | DataType::Date => {
                w.u32(v.as_i64().unwrap_or(0) as u32);
            }
            DataType::Int64 | DataType::Decimal { .. } => {
                w.i64(v.as_i64().unwrap_or(0));
            }
            DataType::Float64 => w.f64(v.as_f64().unwrap_or(0.0)),
            DataType::Utf8 => {
                let s = v.as_str().unwrap_or("");
                w.u16(s.len() as u16);
                w.bytes(s.as_bytes());
            }
        }
    }
    w.into_bytes()
}

/// Decode a row serialized by [`encode_fixed`].
pub fn decode_fixed(schema: &Schema, data: &[u8]) -> Result<Row> {
    let mut r = Reader::new(data);
    let n_words = schema.len().div_ceil(64);
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    let nulls = Bitmap::from_words(words, schema.len());
    let mut values = Vec::with_capacity(schema.len());
    for i in 0..schema.len() {
        let ty = schema.field(i).data_type;
        let v = match ty {
            DataType::Bool => Value::Bool(r.u8()? != 0),
            DataType::Int32 | DataType::Date => Value::from_i64(ty, r.u32()? as i32 as i64),
            DataType::Int64 | DataType::Decimal { .. } => Value::from_i64(ty, r.i64()?),
            DataType::Float64 => Value::Float64(r.f64()?),
            DataType::Utf8 => {
                let n = r.u16()? as usize;
                let mut buf = vec![0u8; n];
                for b in &mut buf {
                    *b = r.u8()?;
                }
                Value::str(
                    std::str::from_utf8(&buf)
                        .map_err(|_| Error::Storage("invalid UTF-8 in row".into()))?,
                )
            }
        };
        values.push(if nulls.get(i) { Value::Null } else { v });
    }
    Ok(Row::new(values))
}

/// The row-compressed image of one cell: minimal-length bytes, without the
/// length prefix (PAGE compression stores lengths out of line).
///
/// NULL encodes as `None` (PAGE compression stores a NULL marker in the
/// cell descriptor, not bytes).
pub fn cell_image(ty: DataType, v: &Value) -> Option<Vec<u8>> {
    if v.is_null() {
        return None;
    }
    Some(match ty {
        DataType::Bool => vec![v.as_bool().unwrap_or(false) as u8],
        DataType::Float64 => v.as_f64().unwrap_or(0.0).to_be_bytes().to_vec(),
        DataType::Utf8 => v.as_str().unwrap_or("").as_bytes().to_vec(),
        _ => {
            // Minimal-length big-endian two's complement.
            let x = v.as_i64().unwrap_or(0);
            let full = x.to_be_bytes();
            let mut start = 0;
            while start < 7 {
                // A leading byte is droppable if it is pure sign extension
                // of the byte after it.
                let b = full[start];
                let next_neg = full[start + 1] & 0x80 != 0;
                if (b == 0 && !next_neg) || (b == 0xFF && next_neg) {
                    start += 1;
                } else {
                    break;
                }
            }
            full[start..].to_vec()
        }
    })
}

/// Decode a [`cell_image`] back to a value.
pub fn decode_cell(ty: DataType, image: Option<&[u8]>) -> Result<Value> {
    let Some(bytes) = image else {
        return Ok(Value::Null);
    };
    Ok(match ty {
        DataType::Bool => Value::Bool(bytes.first().copied().unwrap_or(0) != 0),
        DataType::Float64 => {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| Error::Storage("bad float cell".into()))?;
            Value::Float64(f64::from_be_bytes(arr))
        }
        DataType::Utf8 => Value::str(
            std::str::from_utf8(bytes).map_err(|_| Error::Storage("invalid UTF-8 cell".into()))?,
        ),
        _ => {
            if bytes.is_empty() || bytes.len() > 8 {
                return Err(Error::Storage("bad integer cell length".into()));
            }
            // Sign-extend.
            let neg = bytes[0] & 0x80 != 0;
            let mut full = [if neg { 0xFF } else { 0 }; 8];
            full[8 - bytes.len()..].copy_from_slice(bytes);
            Value::from_i64(ty, i64::from_be_bytes(full))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("a", DataType::Int64),
            Field::nullable("b", DataType::Utf8),
            Field::nullable("c", DataType::Float64),
            Field::not_null("d", DataType::Date),
        ])
    }

    #[test]
    fn fixed_roundtrip() {
        let s = schema();
        for row in [
            Row::new(vec![
                Value::Int64(-5),
                Value::str("hello"),
                Value::Float64(2.5),
                Value::Date(19000),
            ]),
            Row::new(vec![
                Value::Int64(i64::MAX),
                Value::Null,
                Value::Null,
                Value::Date(-1),
            ]),
        ] {
            let bytes = encode_fixed(&s, &row);
            assert_eq!(decode_fixed(&s, &bytes).unwrap(), row);
        }
    }

    #[test]
    fn cell_image_minimal_ints() {
        for (v, want_len) in [
            (0i64, 1),
            (1, 1),
            (-1, 1),
            (127, 1),
            (128, 2), // needs a 0x00 sign byte
            (-128, 1),
            (-129, 2),
            (65535, 3),
            (i64::MAX, 8),
            (i64::MIN, 8),
        ] {
            let img = cell_image(DataType::Int64, &Value::Int64(v)).unwrap();
            assert_eq!(img.len(), want_len, "value {v}");
            assert_eq!(
                decode_cell(DataType::Int64, Some(&img)).unwrap(),
                Value::Int64(v)
            );
        }
    }

    #[test]
    fn cell_image_null_and_strings() {
        assert_eq!(cell_image(DataType::Int64, &Value::Null), None);
        assert_eq!(decode_cell(DataType::Int64, None).unwrap(), Value::Null);
        let img = cell_image(DataType::Utf8, &Value::str("ab")).unwrap();
        assert_eq!(img, b"ab");
        assert_eq!(
            decode_cell(DataType::Utf8, Some(&img)).unwrap(),
            Value::str("ab")
        );
    }

    #[test]
    fn cell_image_floats_roundtrip() {
        for f in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE] {
            let img = cell_image(DataType::Float64, &Value::Float64(f)).unwrap();
            assert_eq!(
                decode_cell(DataType::Float64, Some(&img)).unwrap(),
                Value::Float64(f)
            );
        }
    }

    #[test]
    fn row_compression_shrinks_small_ints() {
        let fixed = encode_fixed(
            &Schema::new(vec![Field::not_null("a", DataType::Int64)]),
            &Row::new(vec![Value::Int64(3)]),
        );
        let img = cell_image(DataType::Int64, &Value::Int64(3)).unwrap();
        assert!(img.len() < fixed.len());
    }
}
