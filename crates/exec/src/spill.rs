//! Spill files: temporary row storage for graceful degradation.
//!
//! When a hash join's build side exceeds the memory budget, both inputs
//! are hash-partitioned into spill files and each partition is joined
//! independently (Grace hash join). Rows serialize with the workspace's
//! binary value codec; files delete themselves on drop.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cstore_common::waits::{self, WaitClass};
use cstore_common::{Error, Result, Row};
use cstore_storage::format::{read_value, write_value, Reader, Writer};

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Accumulated spill IO time is recorded as one `SPILL_IO` wait
/// observation per file side (write side at seal/drop, read side at
/// reader drop) rather than per row, so a million-row spill doesn't
/// generate a million wait events.
fn record_spill_io(io: Duration) {
    if !io.is_zero() {
        waits::observe(WaitClass::SpillIo, io);
    }
}

/// A temporary file of serialized rows.
pub struct SpillFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    n_rows: usize,
    bytes: u64,
    io: Duration,
}

impl SpillFile {
    /// Create a fresh spill file in `dir`.
    pub fn create(dir: &std::path::Path) -> Result<SpillFile> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("cstore-spill-{}-{seq}.tmp", std::process::id()));
        let start = Instant::now();
        let file = File::create(&path)?;
        Ok(SpillFile {
            path,
            writer: Some(BufWriter::new(file)),
            n_rows: 0,
            bytes: 0,
            io: start.elapsed(),
        })
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Append one row.
    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| Error::Execution("spill file already sealed".into()))?;
        let mut buf = Writer::new();
        buf.u16(row.len() as u16);
        for v in row.values() {
            write_value(&mut buf, v)?;
        }
        let bytes = buf.into_bytes();
        let start = Instant::now();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&bytes)?;
        self.io += start.elapsed();
        self.n_rows += 1;
        self.bytes += bytes.len() as u64 + 4;
        Ok(())
    }

    /// Finish writing and return a reader over the rows.
    pub fn into_reader(mut self) -> Result<SpillReader> {
        let start = Instant::now();
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        let file = File::open(&self.path)?;
        self.io += start.elapsed();
        record_spill_io(std::mem::take(&mut self.io));
        Ok(SpillReader {
            // Move path ownership so the file is deleted when the reader
            // drops (self's Drop must not delete it first).
            path: std::mem::take(&mut self.path),
            reader: BufReader::new(file),
            remaining: self.n_rows,
            io: Duration::ZERO,
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Abandoned before into_reader (error path): still charge the IO.
        record_spill_io(std::mem::take(&mut self.io));
        if !self.path.as_os_str().is_empty() {
            // lint: allow(discard) — best-effort temp-file cleanup in Drop
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Reader over a sealed spill file; deletes the file on drop.
pub struct SpillReader {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: usize,
    io: Duration,
}

impl SpillReader {
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Read the next row, or `None` at end.
    pub fn read_row(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let start = Instant::now();
        let mut len_buf = [0u8; 4];
        self.reader.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf)?;
        self.io += start.elapsed();
        let mut r = Reader::new(&buf);
        let n = r.u16()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(read_value(&mut r)?);
        }
        self.remaining -= 1;
        Ok(Some(Row::new(values)))
    }

    /// Drain all remaining rows.
    pub fn read_all(mut self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some(row) = self.read_row()? {
            out.push(row);
        }
        Ok(out)
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        record_spill_io(std::mem::take(&mut self.io));
        // lint: allow(discard) — best-effort temp-file cleanup in Drop
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![
            Value::Int64(i),
            Value::str(format!("spill-{i}")),
            if i % 3 == 0 {
                Value::Null
            } else {
                Value::Float64(i as f64)
            },
        ])
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = SpillFile::create(&std::env::temp_dir()).unwrap();
        for i in 0..1000 {
            f.write_row(&row(i)).unwrap();
        }
        assert_eq!(f.n_rows(), 1000);
        assert!(f.bytes_written() > 0);
        let rows = f.into_reader().unwrap().read_all().unwrap();
        assert_eq!(rows.len(), 1000);
        assert_eq!(rows[123], row(123));
        assert_eq!(rows[999], row(999));
    }

    #[test]
    fn file_deleted_after_reader_drops() {
        let mut f = SpillFile::create(&std::env::temp_dir()).unwrap();
        f.write_row(&row(1)).unwrap();
        let reader = f.into_reader().unwrap();
        let path = reader.path.clone();
        assert!(path.exists());
        drop(reader);
        assert!(!path.exists());
    }

    #[test]
    fn file_deleted_if_never_read() {
        let path;
        {
            let mut f = SpillFile::create(&std::env::temp_dir()).unwrap();
            f.write_row(&row(1)).unwrap();
            path = f.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn spill_io_attributed_to_installed_wait_frame() {
        let frame = std::sync::Arc::new(cstore_common::waits::WaitProfile::new());
        {
            let _scope = cstore_common::waits::install(frame.clone());
            let mut f = SpillFile::create(&std::env::temp_dir()).unwrap();
            for i in 0..1000 {
                f.write_row(&row(i)).unwrap();
            }
            let rows = f.into_reader().unwrap().read_all().unwrap();
            assert_eq!(rows.len(), 1000);
        }
        let snap = frame.snapshot();
        let spill = snap
            .iter()
            .find(|s| s.class == "SPILL_IO")
            .expect("SPILL_IO recorded on the query frame");
        assert!(spill.count >= 2, "write side + read side: {spill:?}");
        assert!(spill.total_ns > 0);
    }

    #[test]
    fn empty_file() {
        let f = SpillFile::create(&std::env::temp_dir()).unwrap();
        let mut r = f.into_reader().unwrap();
        assert!(r.read_row().unwrap().is_none());
    }
}
