//! Bitmap (Bloom) filters for semi-join reduction.
//!
//! During a batch hash join's build phase the engine creates a compact
//! filter over the build-side join keys and pushes it into the probe-side
//! scan, so fact rows that cannot join are dropped at the scan — before
//! any join work. SQL Server calls these *bitmap filters*; like the real
//! implementation, the filter is an **exact bitmap** when the key domain
//! is small (no false positives) and a **Bloom filter** otherwise.

use cstore_common::hash::hash_u64;
use cstore_common::Bitmap;

/// Maximum key span (max − min) for the exact-bitmap representation.
const EXACT_SPAN_LIMIT: u64 = 1 << 21; // 2M bits = 256 KiB

/// Bits per key in the Bloom representation (~1% false positives with
/// 4 probes at 10 bits/key).
const BLOOM_BITS_PER_KEY: usize = 10;
const BLOOM_PROBES: usize = 4;

/// A filter over i64 join keys.
#[derive(Clone, Debug)]
pub enum BitmapFilter {
    /// Dense bitmap over `key - min` for narrow key domains: exact.
    Exact { min: i64, bits: Bitmap },
    /// Bloom filter for wide domains: small chance of false positives.
    Bloom { bits: Bitmap, mask: u64 },
}

impl BitmapFilter {
    /// Build from the build side's non-null join keys. Returns `None` for
    /// an empty key set (the join produces nothing; the planner handles
    /// that separately).
    pub fn build(keys: &[i64]) -> Option<BitmapFilter> {
        let (&min, &max) = (keys.iter().min()?, keys.iter().max()?);
        let span = max.wrapping_sub(min) as u64;
        if span < EXACT_SPAN_LIMIT {
            let mut bits = Bitmap::zeros(span as usize + 1);
            for &k in keys {
                bits.set((k - min) as usize);
            }
            Some(BitmapFilter::Exact { min, bits })
        } else {
            let n_bits = (keys.len() * BLOOM_BITS_PER_KEY)
                .next_power_of_two()
                .max(1024);
            let mut bits = Bitmap::zeros(n_bits);
            let mask = (n_bits - 1) as u64;
            for &k in keys {
                let h = hash_u64(k as u64);
                let h2 = (h >> 32) | 1;
                for p in 0..BLOOM_PROBES as u64 {
                    bits.set((h.wrapping_add(p.wrapping_mul(h2)) & mask) as usize);
                }
            }
            Some(BitmapFilter::Bloom { bits, mask })
        }
    }

    /// Might `key` be in the build side? Exact filters never report false
    /// positives; Bloom filters may.
    #[inline]
    pub fn maybe_contains(&self, key: i64) -> bool {
        match self {
            BitmapFilter::Exact { min, bits } => {
                let off = key.wrapping_sub(*min);
                (0..bits.len() as i64).contains(&off) && bits.get(off as usize)
            }
            BitmapFilter::Bloom { bits, mask } => {
                let h = hash_u64(key as u64);
                let h2 = (h >> 32) | 1;
                (0..BLOOM_PROBES as u64)
                    .all(|p| bits.get((h.wrapping_add(p.wrapping_mul(h2)) & mask) as usize))
            }
        }
    }

    /// Is this the exact (false-positive-free) representation?
    pub fn is_exact(&self) -> bool {
        matches!(self, BitmapFilter::Exact { .. })
    }

    /// Filter size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            BitmapFilter::Exact { bits, .. } | BitmapFilter::Bloom { bits, .. } => {
                bits.words().len() * 8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_narrow_domain() {
        let keys: Vec<i64> = (100..200).collect();
        let f = BitmapFilter::build(&keys).unwrap();
        assert!(f.is_exact());
        for k in 100..200 {
            assert!(f.maybe_contains(k));
        }
        assert!(!f.maybe_contains(99));
        assert!(!f.maybe_contains(200));
        assert!(!f.maybe_contains(i64::MIN));
    }

    #[test]
    fn bloom_for_wide_domain() {
        let keys: Vec<i64> = (0..10_000).map(|i| i * 1_000_003).collect();
        let f = BitmapFilter::build(&keys).unwrap();
        assert!(!f.is_exact());
        // No false negatives.
        for &k in &keys {
            assert!(f.maybe_contains(k));
        }
        // False positive rate on absent keys ≈ 1%.
        let mut fp = 0;
        let trials = 10_000;
        for i in 0..trials {
            let k = i * 1_000_003 + 17; // guaranteed absent
            if f.maybe_contains(k) {
                fp += 1;
            }
        }
        assert!(
            fp < trials / 20,
            "false positive rate too high: {fp}/{trials}"
        );
    }

    #[test]
    fn negative_keys() {
        let keys = vec![-5, -1, 3];
        let f = BitmapFilter::build(&keys).unwrap();
        assert!(f.is_exact());
        assert!(f.maybe_contains(-5));
        assert!(f.maybe_contains(3));
        assert!(!f.maybe_contains(0));
        assert!(!f.maybe_contains(-6));
    }

    #[test]
    fn empty_keys_yield_none() {
        assert!(BitmapFilter::build(&[]).is_none());
    }

    #[test]
    fn extreme_span_uses_bloom() {
        let keys = vec![i64::MIN, 0, i64::MAX];
        let f = BitmapFilter::build(&keys).unwrap();
        assert!(!f.is_exact());
        assert!(f.maybe_contains(i64::MIN));
        assert!(f.maybe_contains(i64::MAX));
    }
}
