//! Batch-mode (vectorized) and row-mode query execution.
//!
//! The execution side of the paper:
//!
//! * [`batch`] / [`vector`] — columnar batches with qualifying-rows
//!   bitmaps, the unit of batch-mode data flow;
//! * [`expr`] — one expression tree, two evaluators (vectorized and
//!   row-at-a-time);
//! * [`ops`] — the batch operator repertoire: scan (segment elimination,
//!   predicate pushdown on encoded data, bitmap-filter application),
//!   filter, project, hash join (all join types, spilling, bitmap-filter
//!   generation), hash aggregation, sort/Top-N, UNION ALL, and the
//!   mixed-mode adapters;
//! * [`row_ops`] — the row-mode baseline operators;
//! * [`bloom`] — exact/Bloom bitmap filters;
//! * [`spill`] — spill files for graceful degradation;
//! * [`runtime`] — execution context, memory budget and metrics.

pub mod batch;
pub mod bloom;
pub mod expr;
pub mod ops;
pub mod row_ops;
pub mod runtime;
pub mod spill;
pub mod vector;

pub use batch::{Batch, BATCH_SIZE};
pub use bloom::BitmapFilter;
pub use expr::{ArithOp, Expr};
pub use ops::hash_agg::{AggExpr, AggFunc, HashAggOp};
pub use ops::hash_join::{BatchHashJoin, JoinType};
pub use ops::introspect::IntrospectionScan;
pub use ops::parallel::ParallelScan;
pub use ops::scan::{BatchSource, ColumnStoreScan, FilterSlot};
pub use ops::stats_op::{RowStatsOp, StatsOp};
pub use ops::{BatchOperator, BoxedBatchOp, BoxedRowOp, RowOperator};
pub use runtime::{ExecContext, ExecStats, Metrics, OpStats};
pub use vector::Vector;
