//! Typed column vectors: the unit of data flow in batch mode.
//!
//! Integer-backed column types (`Bool`, `Int32`, `Int64`, `Date`,
//! `Decimal`) all widen to `i64` vectors — one code path for comparisons,
//! arithmetic and hashing, at the cost of a few bytes per narrow value,
//! exactly the trade SQL Server's batch layout makes. Strings coming out
//! of column segments stay as **dictionary codes** plus a shared
//! dictionary, so string predicates, joins and group-bys run on integers;
//! strings materialize only at the query boundary.

use std::sync::Arc;

use cstore_common::{Bitmap, DataType, Error, Result, Value};
use cstore_storage::encode::Dictionary;
use cstore_storage::segment::SegmentValues;

/// Hash tag for NULL values (shared by vector- and row-format hashing).
const NULL_HASH: u64 = 0x6e75_6c6c_6e75_6c6c;

/// Hash one scalar value, consistent with [`Vector::hash_into`].
pub fn hash_value(v: &Value) -> u64 {
    use cstore_common::hash::{hash_bytes, hash_u64};
    match v {
        Value::Null => NULL_HASH,
        Value::Float64(f) => hash_u64(f.to_bits()),
        Value::Str(s) => hash_bytes(s.as_bytes()),
        _ => hash_u64(v.as_i64().unwrap_or(0) as u64),
    }
}

/// Combine a multi-column key's hashes exactly as repeated
/// [`Vector::hash_into`] calls would: `h = rotl(h, 23) ^ hash(value)`.
pub fn hash_values<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = 0u64;
    for v in values {
        h = h.rotate_left(23) ^ hash_value(v);
    }
    h
}

/// String vector storage: dictionary-coded (from segments) or owned
/// (computed / from delta rows).
#[derive(Clone, Debug)]
pub enum StrVector {
    Dict {
        codes: Vec<u32>,
        dict: Arc<Dictionary>,
    },
    Owned(Vec<Arc<str>>),
}

impl StrVector {
    pub fn len(&self) -> usize {
        match self {
            StrVector::Dict { codes, .. } => codes.len(),
            StrVector::Owned(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The string at `idx` (caller has checked NULL).
    pub fn get(&self, idx: usize) -> &Arc<str> {
        match self {
            StrVector::Dict { codes, dict } => dict.str_at(codes[idx]),
            StrVector::Owned(v) => &v[idx],
        }
    }
}

/// A typed column of values with an optional NULL bitmap.
#[derive(Clone, Debug)]
pub enum Vector {
    I64 {
        values: Vec<i64>,
        nulls: Option<Bitmap>,
    },
    F64 {
        values: Vec<f64>,
        nulls: Option<Bitmap>,
    },
    Str {
        strings: StrVector,
        nulls: Option<Bitmap>,
    },
}

impl Vector {
    pub fn len(&self) -> usize {
        match self {
            Vector::I64 { values, .. } => values.len(),
            Vector::F64 { values, .. } => values.len(),
            Vector::Str { strings, .. } => strings.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn nulls(&self) -> Option<&Bitmap> {
        match self {
            Vector::I64 { nulls, .. } | Vector::F64 { nulls, .. } | Vector::Str { nulls, .. } => {
                nulls.as_ref()
            }
        }
    }

    #[inline]
    pub fn is_null(&self, idx: usize) -> bool {
        self.nulls().is_some_and(|n| n.get(idx))
    }

    /// Materialize one value with logical type `ty`.
    pub fn value_at(&self, idx: usize, ty: DataType) -> Value {
        if self.is_null(idx) {
            return Value::Null;
        }
        match self {
            Vector::I64 { values, .. } => Value::from_i64(ty, values[idx]),
            Vector::F64 { values, .. } => Value::Float64(values[idx]),
            Vector::Str { strings, .. } => Value::Str(strings.get(idx).clone()),
        }
    }

    /// Raw i64 at `idx` (vector must be I64; caller has checked NULL).
    #[inline]
    pub fn i64_at(&self, idx: usize) -> i64 {
        match self {
            Vector::I64 { values, .. } => values[idx],
            // lint: allow(panic) — typed-accessor contract, same class as
            // slice indexing
            _ => panic!("i64_at on non-integer vector"),
        }
    }

    /// Build a vector from dynamically-typed values of column type `ty`.
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<Vector> {
        let n = values.len();
        let mut nulls: Option<Bitmap> = None;
        let mark_null = |i: usize, nulls: &mut Option<Bitmap>| {
            nulls.get_or_insert_with(|| Bitmap::zeros(n)).set(i);
        };
        Ok(match ty {
            DataType::Float64 => {
                let mut out = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Null => {
                            mark_null(i, &mut nulls);
                            out.push(0.0);
                        }
                        _ => out
                            .push(v.as_f64().ok_or_else(|| {
                                Error::Type(format!("expected FLOAT, got {v:?}"))
                            })?),
                    }
                }
                Vector::F64 { values: out, nulls }
            }
            DataType::Utf8 => {
                let mut out = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Null => {
                            mark_null(i, &mut nulls);
                            out.push(Arc::from(""));
                        }
                        Value::Str(s) => out.push(s.clone()),
                        _ => return Err(Error::Type(format!("expected VARCHAR, got {v:?}"))),
                    }
                }
                Vector::Str {
                    strings: StrVector::Owned(out),
                    nulls,
                }
            }
            _ => {
                let mut out = Vec::with_capacity(n);
                for (i, v) in values.iter().enumerate() {
                    match v {
                        Value::Null => {
                            mark_null(i, &mut nulls);
                            out.push(0);
                        }
                        _ => out.push(
                            v.as_i64()
                                .ok_or_else(|| Error::Type(format!("expected {ty}, got {v:?}")))?,
                        ),
                    }
                }
                Vector::I64 { values: out, nulls }
            }
        })
    }

    /// Adopt decoded segment values (zero-copy where the shapes line up).
    pub fn from_segment(sv: SegmentValues) -> Vector {
        match sv {
            SegmentValues::I64 { values, nulls } => Vector::I64 { values, nulls },
            SegmentValues::F64 { values, nulls } => Vector::F64 { values, nulls },
            SegmentValues::Str { codes, dict, nulls } => Vector::Str {
                strings: StrVector::Dict { codes, dict },
                nulls,
            },
        }
    }

    /// A constant vector of `n` copies of `v` (for literal expressions).
    pub fn constant(ty: DataType, v: &Value, n: usize) -> Result<Vector> {
        if v.is_null() {
            let nulls = Some(Bitmap::ones(n));
            return Ok(match ty {
                DataType::Float64 => Vector::F64 {
                    values: vec![0.0; n],
                    nulls,
                },
                DataType::Utf8 => Vector::Str {
                    strings: StrVector::Owned(vec![Arc::from(""); n]),
                    nulls,
                },
                _ => Vector::I64 {
                    values: vec![0; n],
                    nulls,
                },
            });
        }
        Ok(match ty {
            DataType::Float64 => Vector::F64 {
                values: vec![
                    v.as_f64().ok_or_else(|| {
                        Error::Type(format!("literal {v:?} is not a float"))
                    })?;
                    n
                ],
                nulls: None,
            },
            DataType::Utf8 => match v {
                Value::Str(s) => Vector::Str {
                    strings: StrVector::Owned(vec![s.clone(); n]),
                    nulls: None,
                },
                _ => return Err(Error::Type(format!("literal {v:?} is not a string"))),
            },
            _ => Vector::I64 {
                values: vec![
                    v.as_i64().ok_or_else(|| {
                        Error::Type(format!("literal {v:?} is not integer-backed"))
                    })?;
                    n
                ],
                nulls: None,
            },
        })
    }

    /// Gather rows at `indices` into a new dense vector.
    pub fn gather(&self, indices: &[u32]) -> Vector {
        let take_nulls = |nulls: &Option<Bitmap>| -> Option<Bitmap> {
            nulls.as_ref().map(|n| {
                let mut out = Bitmap::zeros(indices.len());
                for (i, &idx) in indices.iter().enumerate() {
                    if n.get(idx as usize) {
                        out.set(i);
                    }
                }
                out
            })
        };
        match self {
            Vector::I64 { values, nulls } => Vector::I64 {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                nulls: take_nulls(nulls),
            },
            Vector::F64 { values, nulls } => Vector::F64 {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                nulls: take_nulls(nulls),
            },
            Vector::Str { strings, nulls } => {
                let strings = match strings {
                    StrVector::Dict { codes, dict } => StrVector::Dict {
                        codes: indices.iter().map(|&i| codes[i as usize]).collect(),
                        dict: dict.clone(),
                    },
                    StrVector::Owned(v) => {
                        StrVector::Owned(indices.iter().map(|&i| v[i as usize].clone()).collect())
                    }
                };
                Vector::Str {
                    strings,
                    nulls: take_nulls(nulls),
                }
            }
        }
    }

    /// Copy the subrange `[start, start + len)` into a new vector.
    pub fn slice(&self, start: usize, len: usize) -> Vector {
        let slice_nulls = |nulls: &Option<Bitmap>| -> Option<Bitmap> {
            nulls.as_ref().map(|n| {
                let mut out = Bitmap::zeros(len);
                for i in 0..len {
                    if n.get(start + i) {
                        out.set(i);
                    }
                }
                out
            })
        };
        match self {
            Vector::I64 { values, nulls } => Vector::I64 {
                values: values[start..start + len].to_vec(),
                nulls: slice_nulls(nulls),
            },
            Vector::F64 { values, nulls } => Vector::F64 {
                values: values[start..start + len].to_vec(),
                nulls: slice_nulls(nulls),
            },
            Vector::Str { strings, nulls } => Vector::Str {
                strings: match strings {
                    StrVector::Dict { codes, dict } => StrVector::Dict {
                        codes: codes[start..start + len].to_vec(),
                        dict: dict.clone(),
                    },
                    StrVector::Owned(v) => StrVector::Owned(v[start..start + len].to_vec()),
                },
                nulls: slice_nulls(nulls),
            },
        }
    }

    /// Hash every row's value into `out` (callers combine across key
    /// columns). NULLs hash to a fixed tag. Dictionary-coded strings hash
    /// the *string bytes*, not the codes, so vectors with different
    /// dictionaries hash compatibly, and [`hash_values`] produces the same
    /// combination for row-format keys.
    pub fn hash_into(&self, out: &mut [u64]) {
        use cstore_common::hash::{hash_bytes, hash_u64};
        match self {
            Vector::I64 { values, nulls } => {
                for (i, (&v, o)) in values.iter().zip(out.iter_mut()).enumerate() {
                    let h = if nulls.as_ref().is_some_and(|n| n.get(i)) {
                        NULL_HASH
                    } else {
                        hash_u64(v as u64)
                    };
                    *o = o.rotate_left(23) ^ h;
                }
            }
            Vector::F64 { values, nulls } => {
                for (i, (&v, o)) in values.iter().zip(out.iter_mut()).enumerate() {
                    let h = if nulls.as_ref().is_some_and(|n| n.get(i)) {
                        NULL_HASH
                    } else {
                        hash_u64(v.to_bits())
                    };
                    *o = o.rotate_left(23) ^ h;
                }
            }
            Vector::Str { strings, nulls } => {
                // Hash each distinct dictionary code once, then gather.
                match strings {
                    StrVector::Dict { codes, dict } => {
                        let mut code_hash: Vec<u64> = Vec::with_capacity(dict.len());
                        for c in 0..dict.len() as u32 {
                            code_hash.push(hash_bytes(dict.str_at(c).as_bytes()));
                        }
                        for (i, (&c, o)) in codes.iter().zip(out.iter_mut()).enumerate() {
                            let h = if nulls.as_ref().is_some_and(|n| n.get(i)) {
                                NULL_HASH
                            } else {
                                code_hash[c as usize]
                            };
                            *o = o.rotate_left(23) ^ h;
                        }
                    }
                    StrVector::Owned(v) => {
                        for (i, (s, o)) in v.iter().zip(out.iter_mut()).enumerate() {
                            let h = if nulls.as_ref().is_some_and(|n| n.get(i)) {
                                NULL_HASH
                            } else {
                                hash_bytes(s.as_bytes())
                            };
                            *o = o.rotate_left(23) ^ h;
                        }
                    }
                }
            }
        }
    }

    /// Approximate heap bytes (memory accounting for spilling decisions).
    pub fn approx_bytes(&self) -> usize {
        let null_bytes = self.nulls().map_or(0, |n| n.words().len() * 8);
        null_bytes
            + match self {
                Vector::I64 { values, .. } => values.len() * 8,
                Vector::F64 { values, .. } => values.len() * 8,
                Vector::Str { strings, .. } => match strings {
                    StrVector::Dict { codes, .. } => codes.len() * 4,
                    StrVector::Owned(v) => v.iter().map(|s| s.len() + 16).sum(),
                },
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_roundtrip() {
        let vals = vec![Value::Int64(1), Value::Null, Value::Int64(3)];
        let v = Vector::from_values(DataType::Int64, &vals).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.value_at(0, DataType::Int64), Value::Int64(1));
        assert_eq!(v.value_at(1, DataType::Int64), Value::Null);
        assert!(v.is_null(1));
    }

    #[test]
    fn from_values_type_checks() {
        assert!(Vector::from_values(DataType::Int64, &[Value::str("x")]).is_err());
        assert!(Vector::from_values(DataType::Utf8, &[Value::Int64(1)]).is_err());
        assert!(Vector::from_values(DataType::Float64, &[Value::str("x")]).is_err());
    }

    #[test]
    fn widening_of_narrow_types() {
        let vals = vec![Value::Date(100), Value::Date(200)];
        let v = Vector::from_values(DataType::Date, &vals).unwrap();
        assert_eq!(v.i64_at(1), 200);
        assert_eq!(v.value_at(1, DataType::Date), Value::Date(200));
    }

    #[test]
    fn gather_and_slice() {
        let v = Vector::from_values(
            DataType::Int64,
            &(0..10).map(Value::Int64).collect::<Vec<_>>(),
        )
        .unwrap();
        let g = v.gather(&[9, 0, 5]);
        assert_eq!(g.i64_at(0), 9);
        assert_eq!(g.i64_at(2), 5);
        let s = v.slice(3, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.i64_at(0), 3);
    }

    #[test]
    fn gather_preserves_nulls() {
        let v = Vector::from_values(
            DataType::Int64,
            &[Value::Int64(0), Value::Null, Value::Int64(2)],
        )
        .unwrap();
        let g = v.gather(&[1, 2]);
        assert!(g.is_null(0));
        assert!(!g.is_null(1));
    }

    #[test]
    fn hash_consistent_across_str_representations() {
        let owned =
            Vector::from_values(DataType::Utf8, &[Value::str("aa"), Value::str("bb")]).unwrap();
        let dict = Arc::new(Dictionary::build_str(["aa", "bb"].into_iter()));
        let coded = Vector::Str {
            strings: StrVector::Dict {
                codes: vec![0, 1],
                dict,
            },
            nulls: None,
        };
        let mut h1 = vec![0u64; 2];
        let mut h2 = vec![0u64; 2];
        owned.hash_into(&mut h1);
        coded.hash_into(&mut h2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn constant_vectors() {
        let v = Vector::constant(DataType::Int64, &Value::Int64(7), 5).unwrap();
        assert_eq!(v.len(), 5);
        assert_eq!(v.i64_at(4), 7);
        let n = Vector::constant(DataType::Utf8, &Value::Null, 3).unwrap();
        assert!(n.is_null(0) && n.is_null(2));
    }
}
