//! Row-mode operators: the baseline execution engine.
//!
//! Classic Volcano row-at-a-time iteration — one `next()` call, one
//! dynamic dispatch, one `Row` allocation per row per operator. This is
//! the execution model the paper's batch mode is measured against; the
//! 10–100× gaps in E2 come from comparing these operators with the batch
//! family on identical plans.

use std::sync::Arc;

use cstore_common::{DataType, Error, FxHashMap, Result, Row, Value};
use cstore_delta::TableSnapshot;
use cstore_rowstore::HeapTable;

use crate::expr::Expr;
use crate::ops::hash_join::JoinType;
use crate::ops::{BoxedRowOp, RowOperator};
use crate::vector::hash_values;

/// Row-mode scan over a heap table (decodes each record as it is read).
pub struct HeapScan {
    table: Arc<HeapTable>,
    types: Vec<DataType>,
    page: usize,
    slot: u16,
}

impl HeapScan {
    pub fn new(table: Arc<HeapTable>) -> Self {
        let types = table
            .schema()
            .fields()
            .iter()
            .map(|f| f.data_type)
            .collect();
        HeapScan {
            table,
            types,
            page: 0,
            slot: 0,
        }
    }
}

impl RowOperator for HeapScan {
    fn output_types(&self) -> &[DataType] {
        &self.types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            let Some(page) = self.table.page(self.page) else {
                return Ok(None);
            };
            if (self.slot as usize) < page.n_rows() {
                let slot = self.slot;
                self.slot += 1;
                if let Some(rec) = page.record(slot) {
                    let row = cstore_rowstore::rowcodec::decode_fixed(self.table.schema(), rec)?;
                    return Ok(Some(row));
                }
                continue; // tombstone
            }
            self.page += 1;
            self.slot = 0;
        }
    }
}

/// Row-mode scan over a columnstore snapshot (SQL Server can read a CSI in
/// row mode too; per-row segment decoding makes this deliberately slow).
pub struct SnapshotRowScan {
    rows: std::vec::IntoIter<Row>,
    types: Vec<DataType>,
}

impl SnapshotRowScan {
    pub fn new(snapshot: &TableSnapshot) -> Self {
        let types = snapshot
            .schema()
            .fields()
            .iter()
            .map(|f| f.data_type)
            .collect();
        let rows: Vec<Row> = snapshot.scan_rows().collect();
        SnapshotRowScan {
            rows: rows.into_iter(),
            types,
        }
    }
}

impl RowOperator for SnapshotRowScan {
    fn output_types(&self) -> &[DataType] {
        &self.types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// Row source over a fixed vector (tests, adapters).
pub struct RowSource {
    types: Vec<DataType>,
    rows: std::vec::IntoIter<Row>,
}

impl RowSource {
    pub fn new(types: Vec<DataType>, rows: Vec<Row>) -> Self {
        RowSource {
            types,
            rows: rows.into_iter(),
        }
    }
}

impl RowOperator for RowSource {
    fn output_types(&self) -> &[DataType] {
        &self.types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// Row-mode filter.
pub struct RowFilter {
    input: BoxedRowOp,
    predicate: Expr,
}

impl RowFilter {
    pub fn new(input: BoxedRowOp, predicate: Expr) -> Self {
        RowFilter { input, predicate }
    }
}

impl RowOperator for RowFilter {
    fn output_types(&self) -> &[DataType] {
        self.input.output_types()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if matches!(self.predicate.eval_row(&row)?, Value::Bool(true)) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Row-mode projection.
pub struct RowProject {
    input: BoxedRowOp,
    exprs: Vec<Expr>,
    output_types: Vec<DataType>,
}

impl RowProject {
    pub fn new(input: BoxedRowOp, exprs: Vec<Expr>) -> Result<Self> {
        let output_types = exprs
            .iter()
            .map(|e| e.infer_type(input.output_types()))
            .collect::<Result<Vec<_>>>()?;
        Ok(RowProject {
            input,
            exprs,
            output_types,
        })
    }
}

impl RowOperator for RowProject {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let Some(row) = self.input.next()? else {
            return Ok(None);
        };
        let values = self
            .exprs
            .iter()
            .map(|e| e.eval_row(&row))
            .collect::<Result<Vec<_>>>()?;
        Ok(Some(Row::new(values)))
    }
}

/// Row-mode hash join (inner / left outer / semi / anti — the subset the
/// row-mode baselines need).
pub struct RowHashJoin {
    probe: BoxedRowOp,
    build: Option<BoxedRowOp>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    join_type: JoinType,
    output_types: Vec<DataType>,
    build_width: usize,
    table: FxHashMap<u64, Vec<Row>>,
    built: bool,
    /// Pending matches for the current probe row.
    pending: std::vec::IntoIter<Row>,
}

impl RowHashJoin {
    pub fn new(
        probe: BoxedRowOp,
        build: BoxedRowOp,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        join_type: JoinType,
    ) -> Result<Self> {
        if probe_keys.is_empty() || probe_keys.len() != build_keys.len() {
            return Err(Error::Plan("hash join key arity mismatch".into()));
        }
        if matches!(join_type, JoinType::RightOuter | JoinType::FullOuter) {
            return Err(Error::Unsupported(
                "row-mode hash join supports inner/left/semi/anti only".into(),
            ));
        }
        let build_width = build.output_types().len();
        let output_types = match join_type {
            JoinType::LeftSemi | JoinType::LeftAnti => probe.output_types().to_vec(),
            _ => {
                let mut t = probe.output_types().to_vec();
                t.extend(build.output_types().iter().copied());
                t
            }
        };
        Ok(RowHashJoin {
            probe,
            build: Some(build),
            probe_keys,
            build_keys,
            join_type,
            output_types,
            build_width,
            table: FxHashMap::default(),
            built: false,
            pending: Vec::new().into_iter(),
        })
    }

    fn build_table(&mut self) -> Result<()> {
        let mut build = self
            .build
            .take()
            .ok_or_else(|| Error::Execution("join build side consumed twice".into()))?;
        while let Some(row) = build.next()? {
            if self.build_keys.iter().any(|&k| row.get(k).is_null()) {
                continue;
            }
            let h = hash_values(self.build_keys.iter().map(|&k| row.get(k)));
            self.table.entry(h).or_default().push(row);
        }
        self.built = true;
        Ok(())
    }
}

impl RowOperator for RowHashJoin {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.built {
            self.build_table()?;
        }
        loop {
            if let Some(row) = self.pending.next() {
                return Ok(Some(row));
            }
            let Some(probe_row) = self.probe.next()? else {
                return Ok(None);
            };
            let null_key = self.probe_keys.iter().any(|&k| probe_row.get(k).is_null());
            let mut matches: Vec<&Row> = Vec::new();
            if !null_key {
                let h = hash_values(self.probe_keys.iter().map(|&k| probe_row.get(k)));
                if let Some(candidates) = self.table.get(&h) {
                    for brow in candidates {
                        let eq = self
                            .probe_keys
                            .iter()
                            .zip(&self.build_keys)
                            .all(|(&pk, &bk)| probe_row.get(pk).eq_storage(brow.get(bk)));
                        if eq {
                            matches.push(brow);
                        }
                    }
                }
            }
            match self.join_type {
                JoinType::LeftSemi => {
                    if !matches.is_empty() {
                        return Ok(Some(probe_row));
                    }
                }
                JoinType::LeftAnti => {
                    if matches.is_empty() {
                        return Ok(Some(probe_row));
                    }
                }
                JoinType::Inner | JoinType::LeftOuter => {
                    if matches.is_empty() {
                        if self.join_type == JoinType::LeftOuter {
                            let mut values = probe_row.into_values();
                            values.extend(std::iter::repeat_n(Value::Null, self.build_width));
                            return Ok(Some(Row::new(values)));
                        }
                        continue;
                    }
                    let out: Vec<Row> = matches
                        .into_iter()
                        .map(|b| {
                            let mut values = probe_row.values().to_vec();
                            values.extend(b.values().iter().cloned());
                            Row::new(values)
                        })
                        .collect();
                    self.pending = out.into_iter();
                }
                // lint: allow(panic) — the constructor rejects every other
                // operator shape before execution starts
                _ => unreachable!("rejected in constructor"),
            }
        }
    }
}

/// Row-mode hash aggregation.
pub struct RowHashAgg {
    input: Option<BoxedRowOp>,
    group_by: Vec<Expr>,
    aggs: Vec<crate::ops::hash_agg::AggExpr>,
    output_types: Vec<DataType>,
    /// Per aggregate: 10^scale for decimal args, 1.0 otherwise (AVG).
    agg_divisors: Vec<f64>,
    result: std::vec::IntoIter<Row>,
    executed: bool,
}

impl RowHashAgg {
    pub fn new(
        input: BoxedRowOp,
        group_by: Vec<Expr>,
        aggs: Vec<crate::ops::hash_agg::AggExpr>,
    ) -> Result<Self> {
        let in_types = input.output_types();
        let mut output_types = Vec::new();
        for g in &group_by {
            output_types.push(g.infer_type(in_types)?);
        }
        let mut agg_divisors = Vec::with_capacity(aggs.len());
        for a in &aggs {
            output_types.push(a.output_type(in_types)?);
            agg_divisors.push(match &a.arg {
                Some(e) => match e.infer_type(in_types)? {
                    DataType::Decimal { scale } => 10f64.powi(scale as i32),
                    _ => 1.0,
                },
                None => 1.0,
            });
        }
        Ok(RowHashAgg {
            input: Some(input),
            group_by,
            aggs,
            output_types,
            agg_divisors,
            result: Vec::new().into_iter(),
            executed: false,
        })
    }

    fn execute(&mut self) -> Result<()> {
        use crate::ops::hash_agg::AggFunc;
        let mut input = self
            .input
            .take()
            .ok_or_else(|| Error::Execution("aggregate executed twice".into()))?;
        let mut groups: FxHashMap<Vec<Value>, Vec<RowAggState>> = FxHashMap::default();
        if self.group_by.is_empty() {
            groups.insert(Vec::new(), self.fresh());
        }
        while let Some(row) = input.next()? {
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|g| g.eval_row(&row))
                .collect::<Result<Vec<_>>>()?;
            let (aggs, divisors) = (&self.aggs, &self.agg_divisors);
            let states = groups.entry(key).or_insert_with(|| {
                aggs.iter()
                    .zip(divisors)
                    .map(|(a, &d)| RowAggState::new(a.func, d))
                    .collect::<Vec<_>>()
            });
            for (state, a) in states.iter_mut().zip(&self.aggs) {
                let v = match (&a.arg, a.func) {
                    (_, AggFunc::CountStar) => None,
                    (Some(e), _) => Some(e.eval_row(&row)?),
                    (None, _) => {
                        return Err(Error::Plan(format!("{:?} requires an argument", a.func)))
                    }
                };
                state.update(v.as_ref())?;
            }
        }
        let n_keys = self.group_by.len();
        let mut rows: Vec<Row> = Vec::with_capacity(groups.len());
        for (key, states) in groups {
            let mut values = key;
            for (state, &ty) in states.into_iter().zip(&self.output_types[n_keys..]) {
                values.push(state.finish(ty));
            }
            rows.push(Row::new(values));
        }
        rows.sort();
        self.result = rows.into_iter();
        self.executed = true;
        Ok(())
    }

    fn fresh(&self) -> Vec<RowAggState> {
        self.aggs
            .iter()
            .zip(&self.agg_divisors)
            .map(|(a, &d)| RowAggState::new(a.func, d))
            .collect()
    }
}

/// Row-mode aggregate accumulator (mirrors the batch-mode semantics).
struct RowAggState {
    func: crate::ops::hash_agg::AggFunc,
    count: i64,
    distinct: Option<FxHashMap<Value, ()>>,
    sum_i: i64,
    sum_f: f64,
    seen: bool,
    is_float: bool,
    /// 10^scale when summing decimal mantissas (for AVG's final divide).
    divisor: f64,
    best: Option<Value>,
}

impl RowAggState {
    fn new(func: crate::ops::hash_agg::AggFunc, divisor: f64) -> Self {
        RowAggState {
            func,
            count: 0,
            distinct: matches!(func, crate::ops::hash_agg::AggFunc::CountDistinct)
                .then(FxHashMap::default),
            sum_i: 0,
            sum_f: 0.0,
            seen: false,
            is_float: false,
            divisor,
            best: None,
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        use crate::ops::hash_agg::AggFunc::*;
        match self.func {
            CountStar => self.count += 1,
            Count => {
                if v.is_some_and(|v| !v.is_null()) {
                    self.count += 1;
                }
            }
            CountDistinct => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    self.distinct
                        .as_mut()
                        .ok_or_else(|| Error::Execution("COUNT(DISTINCT) state missing".into()))?
                        .insert(v.clone(), ());
                }
            }
            Sum | Avg => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    self.seen = true;
                    self.count += 1;
                    match v {
                        Value::Float64(f) => {
                            self.is_float = true;
                            self.sum_f += f;
                        }
                        _ => {
                            let x = v.as_i64().ok_or_else(|| {
                                Error::Type(format!("SUM over non-numeric {v:?}"))
                            })?;
                            self.sum_i = self
                                .sum_i
                                .checked_add(x)
                                .ok_or_else(|| Error::Execution("SUM overflow".into()))?;
                            self.sum_f += x as f64;
                        }
                    }
                }
            }
            Min | Max => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let want_max = self.func == Max;
                    let better = match &self.best {
                        None => true,
                        Some(b) => {
                            let ord = v.cmp_sql(b);
                            if want_max {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if better {
                        self.best = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self, out_ty: DataType) -> Value {
        use crate::ops::hash_agg::AggFunc::*;
        match self.func {
            CountStar | Count => Value::Int64(self.count),
            CountDistinct => Value::Int64(self.distinct.map(|d| d.len()).unwrap_or(0) as i64),
            Sum => {
                if !self.seen {
                    Value::Null
                } else if self.is_float {
                    Value::Float64(self.sum_f)
                } else {
                    Value::from_i64(out_ty, self.sum_i)
                }
            }
            Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float64(self.sum_f / self.count as f64 / self.divisor)
                }
            }
            Min | Max => self.best.unwrap_or(Value::Null),
        }
    }
}

impl RowOperator for RowHashAgg {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.executed {
            self.execute()?;
        }
        Ok(self.result.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_row_mode;
    use crate::ops::hash_agg::{AggExpr, AggFunc};
    use cstore_common::{Field, Schema};
    use cstore_storage::pred::CmpOp;

    fn heap() -> Arc<HeapTable> {
        let schema = Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::not_null("cat", DataType::Utf8),
        ]);
        let mut t = HeapTable::new(schema);
        for i in 0..100 {
            t.insert(&Row::new(vec![
                Value::Int64(i),
                Value::str(["x", "y"][(i % 2) as usize]),
            ]))
            .unwrap();
        }
        Arc::new(t)
    }

    #[test]
    fn heap_scan_reads_all() {
        let rows = collect_row_mode(Box::new(HeapScan::new(heap()))).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[42].get(0), &Value::Int64(42));
    }

    #[test]
    fn filter_project_pipeline() {
        let scan = HeapScan::new(heap());
        let filt = RowFilter::new(
            Box::new(scan),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10i64)),
        );
        let proj = RowProject::new(Box::new(filt), vec![Expr::col(1), Expr::col(0)]).unwrap();
        let rows = collect_row_mode(Box::new(proj)).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3].get(0), &Value::str("y"));
        assert_eq!(rows[3].get(1), &Value::Int64(3));
    }

    #[test]
    fn row_join_matches_batch_semantics() {
        let probe = RowSource::new(
            vec![DataType::Int64],
            (0..10).map(|i| Row::new(vec![Value::Int64(i)])).collect(),
        );
        let build = RowSource::new(
            vec![DataType::Int64, DataType::Utf8],
            (5..15)
                .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("b{i}"))]))
                .collect(),
        );
        let j = RowHashJoin::new(
            Box::new(probe),
            Box::new(build),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
        .unwrap();
        let rows = collect_row_mode(Box::new(j)).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn row_left_outer_and_anti() {
        let mk_probe = || {
            RowSource::new(
                vec![DataType::Int64],
                vec![
                    Row::new(vec![Value::Int64(1)]),
                    Row::new(vec![Value::Null]),
                    Row::new(vec![Value::Int64(99)]),
                ],
            )
        };
        let mk_build =
            || RowSource::new(vec![DataType::Int64], vec![Row::new(vec![Value::Int64(1)])]);
        let outer = RowHashJoin::new(
            Box::new(mk_probe()),
            Box::new(mk_build()),
            vec![0],
            vec![0],
            JoinType::LeftOuter,
        )
        .unwrap();
        let rows = collect_row_mode(Box::new(outer)).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().filter(|r| r.get(1).is_null()).count(), 2);
        let anti = RowHashJoin::new(
            Box::new(mk_probe()),
            Box::new(mk_build()),
            vec![0],
            vec![0],
            JoinType::LeftAnti,
        )
        .unwrap();
        let rows = collect_row_mode(Box::new(anti)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn row_agg_matches_batch_agg() {
        let scan = HeapScan::new(heap());
        let agg = RowHashAgg::new(
            Box::new(scan),
            vec![Expr::col(1)],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Sum, Expr::col(0)),
            ],
        )
        .unwrap();
        let rows = collect_row_mode(Box::new(agg)).unwrap();
        assert_eq!(rows.len(), 2);
        let x = rows.iter().find(|r| r.get(0) == &Value::str("x")).unwrap();
        assert_eq!(x.get(1), &Value::Int64(50));
        assert_eq!(
            x.get(2),
            &Value::Int64((0..100).filter(|i| i % 2 == 0).sum::<i64>())
        );
    }

    #[test]
    fn row_mode_rejects_right_outer() {
        let probe = RowSource::new(vec![DataType::Int64], vec![]);
        let build = RowSource::new(vec![DataType::Int64], vec![]);
        assert!(RowHashJoin::new(
            Box::new(probe),
            Box::new(build),
            vec![0],
            vec![0],
            JoinType::RightOuter,
        )
        .is_err());
    }
}
