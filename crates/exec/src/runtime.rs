//! Execution context: memory budget, batch size, metrics, per-query stats.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cstore_common::governor::{MemoryLedger, QueryReservation};
use cstore_common::sync::Mutex;
use cstore_common::waits::WaitProfile;
use cstore_common::{Error, Result};

use crate::batch::BATCH_SIZE;

/// Fail with the standard timeout error once `deadline` has passed.
///
/// The stats wrappers call this at every operator boundary; operators
/// with internal loops that can run long between boundaries (spill
/// writes, partition merges, `sys.*` scans) call it directly so a
/// spilling join cannot overrun its deadline.
pub fn check_deadline(deadline: Option<Instant>) -> Result<()> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(Error::Execution(
            "query timeout exceeded (SET query_timeout_ms)".into(),
        )),
        _ => Ok(()),
    }
}

/// Counters collected during execution; all monotonic, safe to read while
/// the query runs.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Rows produced by scans (after elimination, before filters).
    /// Includes both columnstore and delta-store rows.
    pub rows_scanned: AtomicU64,
    /// Row groups skipped by segment elimination.
    pub groups_eliminated: AtomicU64,
    /// Row groups actually read.
    pub groups_scanned: AtomicU64,
    /// Rows dropped at scans by pushed-down bitmap filters.
    pub rows_dropped_by_bitmap: AtomicU64,
    /// Batches produced by all operators.
    pub batches: AtomicU64,
    /// Hash-join partitions spilled to disk.
    pub partitions_spilled: AtomicU64,
    /// Bytes written to spill files.
    pub bytes_spilled: AtomicU64,
    /// Rows scanned from delta stores (subset of `rows_scanned`).
    pub rows_scanned_delta: AtomicU64,
    /// Rows probed against pushed-down bitmap filters.
    pub bitmap_probes: AtomicU64,
    /// Bitmap filters installed in exact mode.
    pub bitmap_filters_exact: AtomicU64,
    /// Bitmap filters installed in Bloom mode.
    pub bitmap_filters_bloom: AtomicU64,
    /// Rows collected on hash-join build sides.
    pub join_build_rows: AtomicU64,
    /// Rows streamed through hash-join probe sides.
    pub join_probe_rows: AtomicU64,
}

impl Metrics {
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot as (name, value) pairs for EXPLAIN ANALYZE-style output.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_scanned", self.rows_scanned.load(Ordering::Relaxed)),
            (
                "groups_eliminated",
                self.groups_eliminated.load(Ordering::Relaxed),
            ),
            (
                "groups_scanned",
                self.groups_scanned.load(Ordering::Relaxed),
            ),
            (
                "rows_dropped_by_bitmap",
                self.rows_dropped_by_bitmap.load(Ordering::Relaxed),
            ),
            ("batches", self.batches.load(Ordering::Relaxed)),
            (
                "partitions_spilled",
                self.partitions_spilled.load(Ordering::Relaxed),
            ),
            ("bytes_spilled", self.bytes_spilled.load(Ordering::Relaxed)),
            (
                "rows_scanned_delta",
                self.rows_scanned_delta.load(Ordering::Relaxed),
            ),
            ("bitmap_probes", self.bitmap_probes.load(Ordering::Relaxed)),
            (
                "bitmap_filters_exact",
                self.bitmap_filters_exact.load(Ordering::Relaxed),
            ),
            (
                "bitmap_filters_bloom",
                self.bitmap_filters_bloom.load(Ordering::Relaxed),
            ),
            (
                "join_build_rows",
                self.join_build_rows.load(Ordering::Relaxed),
            ),
            (
                "join_probe_rows",
                self.join_probe_rows.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Fold every counter into `target`. Used to roll a per-query
    /// [`Metrics`] back into a long-lived cumulative one.
    pub fn merge_into(&self, target: &Metrics) {
        target
            .rows_scanned
            .fetch_add(self.rows_scanned.load(Ordering::Relaxed), Ordering::Relaxed);
        target.groups_eliminated.fetch_add(
            self.groups_eliminated.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.groups_scanned.fetch_add(
            self.groups_scanned.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.rows_dropped_by_bitmap.fetch_add(
            self.rows_dropped_by_bitmap.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target
            .batches
            .fetch_add(self.batches.load(Ordering::Relaxed), Ordering::Relaxed);
        target.partitions_spilled.fetch_add(
            self.partitions_spilled.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.bytes_spilled.fetch_add(
            self.bytes_spilled.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.rows_scanned_delta.fetch_add(
            self.rows_scanned_delta.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.bitmap_probes.fetch_add(
            self.bitmap_probes.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.bitmap_filters_exact.fetch_add(
            self.bitmap_filters_exact.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.bitmap_filters_bloom.fetch_add(
            self.bitmap_filters_bloom.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.join_build_rows.fetch_add(
            self.join_build_rows.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        target.join_probe_rows.fetch_add(
            self.join_probe_rows.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

/// Per-operator actuals collected while a query runs. One instance per
/// physical operator, registered in [`ExecStats`] keyed by the plan's
/// pre-order node index (the same numbering `explain` renders).
#[derive(Debug, Default)]
pub struct OpStats {
    /// Pre-order index of the logical node this operator implements.
    pub node: usize,
    /// Operator label as rendered by EXPLAIN (e.g. `Scan sales`).
    pub label: String,
    /// Rows emitted by this operator.
    pub rows_out: AtomicU64,
    /// Batches (or row-mode `next()` calls yielding a row) emitted.
    pub batches_out: AtomicU64,
    /// Wall time spent inside this operator's `next()`, nanoseconds.
    /// Inclusive of children (pull-based executor).
    pub elapsed_ns: AtomicU64,
}

impl OpStats {
    pub fn record(&self, rows: u64, elapsed_ns: u64) {
        if rows > 0 {
            self.rows_out.fetch_add(rows, Ordering::Relaxed);
            self.batches_out.fetch_add(1, Ordering::Relaxed);
        }
        self.elapsed_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    }

    pub fn rows(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed)
    }

    pub fn batches(&self) -> u64 {
        self.batches_out.load(Ordering::Relaxed)
    }

    pub fn elapsed_nanos(&self) -> u64 {
        self.elapsed_ns.load(Ordering::Relaxed)
    }
}

/// Registry of per-operator stats for one query execution. Fresh per
/// query (see [`ExecContext::for_query`]); operators register themselves
/// while the physical plan is built and EXPLAIN ANALYZE reads the
/// results after the root is drained.
#[derive(Debug)]
pub struct ExecStats {
    op_stats: Mutex<Vec<Arc<OpStats>>>,
}

impl Default for ExecStats {
    fn default() -> Self {
        ExecStats {
            op_stats: Mutex::new_leveled(6, "exec.op_stats", Vec::new()),
        }
    }
}

impl ExecStats {
    /// Register stats for the operator implementing pre-order `node`.
    pub fn register(&self, node: usize, label: impl Into<String>) -> Arc<OpStats> {
        let stats = Arc::new(OpStats {
            node,
            label: label.into(),
            ..OpStats::default()
        });
        self.op_stats.lock().push(Arc::clone(&stats));
        stats
    }

    /// All registered operators, sorted by pre-order node index.
    pub fn operators(&self) -> Vec<Arc<OpStats>> {
        let mut ops: Vec<_> = self.op_stats.lock().iter().cloned().collect();
        ops.sort_by_key(|s| s.node);
        ops
    }

    /// Stats for pre-order node `node`, if an operator registered it.
    pub fn for_node(&self, node: usize) -> Option<Arc<OpStats>> {
        self.op_stats
            .lock()
            .iter()
            .find(|s| s.node == node)
            .cloned()
    }
}

/// Shared execution context, cloned into every operator.
#[derive(Clone)]
pub struct ExecContext {
    /// Memory budget for blocking operators (hash join build side); beyond
    /// this, operators spill.
    pub memory_budget: usize,
    /// Rows per batch.
    pub batch_size: usize,
    /// Directory for spill files.
    pub spill_dir: PathBuf,
    /// Whether hash joins may push bitmap (Bloom) filters into probe-side
    /// scans. On by default; the ablation experiment (E4) turns it off.
    pub enable_bitmap_filters: bool,
    /// Worker threads per columnstore scan (1 = serial).
    pub parallelism: usize,
    /// Shared metrics.
    pub metrics: Arc<Metrics>,
    /// Per-operator stats for the current query (fresh per `for_query`).
    pub stats: Arc<ExecStats>,
    /// Wall-clock point after which the query must abort with a clean
    /// `Error::Execution` (set per query from `SET query_timeout_ms`).
    /// Checked at every operator boundary by the stats wrappers.
    pub deadline: Option<Instant>,
    /// Process-wide memory ledger shared by every concurrent query
    /// (installed by the database's resource governor; `None` when
    /// ungoverned).
    pub ledger: Option<Arc<MemoryLedger>>,
    /// This query's running reservation against `ledger` (fresh per
    /// [`ExecContext::for_query`]; outstanding bytes return to the
    /// ledger when the query's context drops).
    pub alloc: Option<Arc<QueryReservation>>,
    /// This query's wait-class breakdown. `for_query` adopts the frame
    /// already installed on the thread (so waits recorded before the
    /// context existed — admission queueing — are visible here), else
    /// starts a fresh one.
    pub waits: Arc<WaitProfile>,
    /// Per-table snapshot overrides for this query, keyed by lower-cased
    /// table name. Installed by an open transaction so every scan sees
    /// the transaction's stable view (base snapshot + its own buffered
    /// writes) instead of the table's live state. `None` (the default)
    /// scans live.
    pub snapshots: Option<Arc<HashMap<String, cstore_delta::TableSnapshot>>>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            memory_budget: 256 << 20,
            batch_size: BATCH_SIZE,
            spill_dir: std::env::temp_dir(),
            enable_bitmap_filters: true,
            parallelism: 1,
            metrics: Arc::new(Metrics::default()),
            stats: Arc::new(ExecStats::default()),
            deadline: None,
            ledger: None,
            alloc: None,
            waits: Arc::new(WaitProfile::new()),
            snapshots: None,
        }
    }
}

impl ExecContext {
    /// Fork a per-query context: same configuration, fresh [`Metrics`]
    /// and [`ExecStats`]. Callers fold the per-query counters back into
    /// a cumulative `Metrics` with [`Metrics::merge_into`] when done.
    pub fn for_query(&self) -> ExecContext {
        ExecContext {
            metrics: Arc::new(Metrics::default()),
            stats: Arc::new(ExecStats::default()),
            alloc: self
                .ledger
                .as_ref()
                .map(|l| Arc::new(QueryReservation::new(Arc::clone(l)))),
            waits: cstore_common::waits::current().unwrap_or_default(),
            ..self.clone()
        }
    }
    /// A context with a specific memory budget (spill experiments).
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    pub fn with_batch_size(mut self, rows: usize) -> Self {
        self.batch_size = rows.max(1);
        self
    }

    /// Disable bitmap-filter pushdown (ablation).
    pub fn without_bitmap_filters(mut self) -> Self {
        self.enable_bitmap_filters = false;
        self
    }

    /// Scan with `k` worker threads per columnstore scan.
    pub fn with_parallelism(mut self, k: usize) -> Self {
        self.parallelism = k.max(1);
        self
    }

    /// Abort execution once `deadline` passes (per-query timeout).
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Scan these tables from fixed snapshots instead of live state —
    /// how an open transaction pins its stable view for the query.
    pub fn with_snapshots(
        mut self,
        snapshots: Option<Arc<HashMap<String, cstore_delta::TableSnapshot>>>,
    ) -> Self {
        self.snapshots = snapshots;
        self
    }

    /// The snapshot override for `table` (case-insensitive), if any.
    pub fn snapshot_for(&self, table: &str) -> Option<cstore_delta::TableSnapshot> {
        self.snapshots
            .as_ref()?
            .get(&table.to_ascii_lowercase())
            .cloned()
    }

    /// Share `ledger` with every query forked from this context. Each
    /// [`ExecContext::for_query`] then gets its own [`QueryReservation`]
    /// so N concurrent queries draw from one ceiling.
    pub fn with_ledger(mut self, ledger: Arc<MemoryLedger>) -> Self {
        self.alloc = Some(Arc::new(QueryReservation::new(Arc::clone(&ledger))));
        self.ledger = Some(ledger);
        self
    }

    /// Reserve `bytes` against the shared ledger; a no-op `Ok` when
    /// ungoverned. A clean `Error::ResourceExhausted` means "spill now"
    /// to operators that can, and propagates to the client otherwise.
    pub fn reserve_memory(&self, bytes: usize) -> Result<()> {
        match &self.alloc {
            Some(a) => a.reserve(bytes as u64),
            None => Ok(()),
        }
    }

    /// Return `bytes` of this query's reservation to the shared ledger.
    pub fn release_memory(&self, bytes: usize) {
        if let Some(a) = &self.alloc {
            a.release(bytes as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let m = Metrics::default();
        m.add(&m.rows_scanned, 10);
        m.add(&m.rows_scanned, 5);
        assert_eq!(Metrics::get(&m.rows_scanned), 15);
        let snap = m.snapshot();
        assert_eq!(snap[0], ("rows_scanned", 15));
    }

    #[test]
    fn context_builders() {
        let ctx = ExecContext::default().with_budget(1024).with_batch_size(0);
        assert_eq!(ctx.memory_budget, 1024);
        assert_eq!(ctx.batch_size, 1, "batch size clamps to >= 1");
    }

    #[test]
    fn merge_folds_every_counter() {
        let q = Metrics::default();
        q.add(&q.rows_scanned, 7);
        q.add(&q.bitmap_probes, 3);
        q.add(&q.join_probe_rows, 2);
        let total = Metrics::default();
        total.add(&total.rows_scanned, 100);
        q.merge_into(&total);
        assert_eq!(Metrics::get(&total.rows_scanned), 107);
        assert_eq!(Metrics::get(&total.bitmap_probes), 3);
        assert_eq!(Metrics::get(&total.join_probe_rows), 2);
    }

    #[test]
    fn for_query_forks_metrics_but_keeps_config() {
        let ctx = ExecContext::default().with_budget(4096);
        ctx.metrics.add(&ctx.metrics.rows_scanned, 9);
        let q = ctx.for_query();
        assert_eq!(q.memory_budget, 4096);
        assert_eq!(Metrics::get(&q.metrics.rows_scanned), 0);
        assert!(q.stats.operators().is_empty());
    }

    #[test]
    fn check_deadline_trips_only_when_past() {
        check_deadline(None).unwrap();
        check_deadline(Some(Instant::now() + std::time::Duration::from_secs(60))).unwrap();
        let err = check_deadline(Some(Instant::now())).unwrap_err();
        assert!(err.to_string().contains("query timeout"), "{err}");
    }

    #[test]
    fn ledger_wiring_forks_fresh_reservations_per_query() {
        let ledger = Arc::new(MemoryLedger::default());
        ledger.set_limit(1000);
        let ctx = ExecContext::default().with_ledger(Arc::clone(&ledger));
        let q1 = ctx.for_query();
        let q2 = ctx.for_query();
        q1.reserve_memory(600).unwrap();
        let err = q2.reserve_memory(600).unwrap_err();
        assert_eq!(err.code(), "RESOURCE_EXHAUSTED");
        q1.release_memory(600);
        q2.reserve_memory(600).unwrap();
        drop(q2);
        assert_eq!(ledger.reserved(), 0, "drop returns outstanding bytes");
        // Ungoverned contexts are no-ops.
        let plain = ExecContext::default().for_query();
        plain.reserve_memory(usize::MAX).unwrap();
        plain.release_memory(1);
    }

    #[test]
    fn exec_stats_register_and_sort() {
        let stats = ExecStats::default();
        let b = stats.register(2, "Filter");
        let a = stats.register(0, "Scan t");
        a.record(10, 1_000);
        a.record(0, 500); // empty poll: time counted, no batch
        b.record(4, 2_000);
        let ops = stats.operators();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].node, 0);
        assert_eq!(ops[0].rows(), 10);
        assert_eq!(ops[0].batches(), 1);
        assert_eq!(ops[0].elapsed_nanos(), 1_500);
        assert_eq!(stats.for_node(2).map(|s| s.rows()), Some(4));
    }
}
