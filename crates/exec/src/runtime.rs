//! Execution context: memory budget, batch size, metrics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::batch::BATCH_SIZE;

/// Counters collected during execution; all monotonic, safe to read while
/// the query runs.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Rows produced by scans (after elimination, before filters).
    pub rows_scanned: AtomicU64,
    /// Row groups skipped by segment elimination.
    pub groups_eliminated: AtomicU64,
    /// Row groups actually read.
    pub groups_scanned: AtomicU64,
    /// Rows dropped at scans by pushed-down bitmap filters.
    pub rows_dropped_by_bitmap: AtomicU64,
    /// Batches produced by all operators.
    pub batches: AtomicU64,
    /// Hash-join partitions spilled to disk.
    pub partitions_spilled: AtomicU64,
    /// Bytes written to spill files.
    pub bytes_spilled: AtomicU64,
}

impl Metrics {
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot as (name, value) pairs for EXPLAIN ANALYZE-style output.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_scanned", self.rows_scanned.load(Ordering::Relaxed)),
            (
                "groups_eliminated",
                self.groups_eliminated.load(Ordering::Relaxed),
            ),
            (
                "groups_scanned",
                self.groups_scanned.load(Ordering::Relaxed),
            ),
            (
                "rows_dropped_by_bitmap",
                self.rows_dropped_by_bitmap.load(Ordering::Relaxed),
            ),
            ("batches", self.batches.load(Ordering::Relaxed)),
            (
                "partitions_spilled",
                self.partitions_spilled.load(Ordering::Relaxed),
            ),
            ("bytes_spilled", self.bytes_spilled.load(Ordering::Relaxed)),
        ]
    }
}

/// Shared execution context, cloned into every operator.
#[derive(Clone)]
pub struct ExecContext {
    /// Memory budget for blocking operators (hash join build side); beyond
    /// this, operators spill.
    pub memory_budget: usize,
    /// Rows per batch.
    pub batch_size: usize,
    /// Directory for spill files.
    pub spill_dir: PathBuf,
    /// Whether hash joins may push bitmap (Bloom) filters into probe-side
    /// scans. On by default; the ablation experiment (E4) turns it off.
    pub enable_bitmap_filters: bool,
    /// Worker threads per columnstore scan (1 = serial).
    pub parallelism: usize,
    /// Shared metrics.
    pub metrics: Arc<Metrics>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            memory_budget: 256 << 20,
            batch_size: BATCH_SIZE,
            spill_dir: std::env::temp_dir(),
            enable_bitmap_filters: true,
            parallelism: 1,
            metrics: Arc::new(Metrics::default()),
        }
    }
}

impl ExecContext {
    /// A context with a specific memory budget (spill experiments).
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    pub fn with_batch_size(mut self, rows: usize) -> Self {
        self.batch_size = rows.max(1);
        self
    }

    /// Disable bitmap-filter pushdown (ablation).
    pub fn without_bitmap_filters(mut self) -> Self {
        self.enable_bitmap_filters = false;
        self
    }

    /// Scan with `k` worker threads per columnstore scan.
    pub fn with_parallelism(mut self, k: usize) -> Self {
        self.parallelism = k.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let m = Metrics::default();
        m.add(&m.rows_scanned, 10);
        m.add(&m.rows_scanned, 5);
        assert_eq!(Metrics::get(&m.rows_scanned), 15);
        let snap = m.snapshot();
        assert_eq!(snap[0], ("rows_scanned", 15));
    }

    #[test]
    fn context_builders() {
        let ctx = ExecContext::default().with_budget(1024).with_batch_size(0);
        assert_eq!(ctx.memory_budget, 1024);
        assert_eq!(ctx.batch_size, 1, "batch size clamps to >= 1");
    }
}
