//! Scalar expressions with both vectorized (batch-mode) and row-at-a-time
//! (row-mode) evaluation.
//!
//! The same expression tree drives both execution modes, which is exactly
//! how the experiments isolate the batch-vs-row gap: identical semantics,
//! different evaluation strategy.

use cstore_common::{Bitmap, DataType, Error, Result, Row, Value};
use cstore_storage::pred::CmpOp;

use crate::batch::Batch;
use crate::vector::{StrVector, Vector};

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A scalar expression over the columns of a batch/row.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Column reference (ordinal into the input).
    Col(usize),
    /// Literal constant.
    Lit(Value),
    /// Comparison producing a boolean.
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Arith {
        op: ArithOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    IsNull(Box<Expr>),
    IsNotNull(Box<Expr>),
    /// `col IN (list)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
    },
    /// `expr LIKE pattern` (`%` = any run, `_` = any one char; no escape).
    Like {
        expr: Box<Expr>,
        pattern: String,
    },
}

/// SQL LIKE matching (`%`/`_` wildcards), iterative with backtracking to
/// the most recent `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pi after %, si at %)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            // Let the last % absorb one more character.
            pi = sp;
            si = ss + 1;
            star = Some((sp, si));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::And(Box::new(lhs), Box::new(rhs))
    }

    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Or(Box::new(lhs), Box::new(rhs))
    }

    pub fn arith(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// The expression's output type given input column types. Comparisons
    /// and boolean connectives yield `Bool`.
    pub fn infer_type(&self, inputs: &[DataType]) -> Result<DataType> {
        Ok(match self {
            Expr::Col(i) => *inputs
                .get(*i)
                .ok_or_else(|| Error::Plan(format!("column {i} out of range")))?,
            Expr::Lit(v) => v.data_type().unwrap_or(DataType::Int64),
            Expr::Cmp { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::IsNull(..)
            | Expr::IsNotNull(..)
            | Expr::InList { .. }
            | Expr::Like { .. } => DataType::Bool,
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.infer_type(inputs)?;
                let r = rhs.infer_type(inputs)?;
                if l == DataType::Float64 || r == DataType::Float64 {
                    DataType::Float64
                } else if *op == ArithOp::Div {
                    // Integer division stays integral (SQL semantics).
                    DataType::Int64
                } else {
                    match (l, r) {
                        (DataType::Decimal { scale }, _) | (_, DataType::Decimal { scale }) => {
                            DataType::Decimal { scale }
                        }
                        _ => DataType::Int64,
                    }
                }
            }
        })
    }

    /// All column ordinals this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Lit(_) => {}
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => e.referenced_columns(out),
            Expr::InList { expr, .. } | Expr::Like { expr, .. } => expr.referenced_columns(out),
        }
    }

    // ---------------------------------------------------------- row mode

    /// Row-at-a-time evaluation (SQL three-valued logic: comparisons with
    /// NULL yield NULL, which filters treat as false).
    pub fn eval_row(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            Expr::Col(i) => row.get(*i).clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval_row(row)?;
                let r = rhs.eval_row(row)?;
                if l.is_null() || r.is_null() {
                    Value::Null
                } else {
                    Value::Bool(op.eval(l.cmp_sql(&r)))
                }
            }
            Expr::And(a, b) => match (a.eval_row(row)?, b.eval_row(row)?) {
                (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            Expr::Or(a, b) => match (a.eval_row(row)?, b.eval_row(row)?) {
                (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            Expr::Not(e) => match e.eval_row(row)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                v => return Err(Error::Type(format!("NOT on non-boolean {v:?}"))),
            },
            Expr::IsNull(e) => Value::Bool(e.eval_row(row)?.is_null()),
            Expr::IsNotNull(e) => Value::Bool(!e.eval_row(row)?.is_null()),
            Expr::InList { expr, list } => {
                let v = expr.eval_row(row)?;
                if v.is_null() {
                    Value::Null
                } else {
                    Value::Bool(list.iter().any(|x| v.eq_storage(x)))
                }
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval_row(row)?;
                match v {
                    Value::Null => Value::Null,
                    Value::Str(s) => Value::Bool(like_match(&s, pattern)),
                    other => return Err(Error::Type(format!("LIKE on non-string {other:?}"))),
                }
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.eval_row(row)?;
                let r = rhs.eval_row(row)?;
                if l.is_null() || r.is_null() {
                    Value::Null
                } else {
                    eval_arith_scalar(*op, &l, &r)?
                }
            }
        })
    }

    // -------------------------------------------------------- batch mode

    /// Vectorized evaluation over all physical rows of a batch (the
    /// qualifying bitmap is applied by the *caller* — filters AND the
    /// result in, projections ignore unqualified lanes).
    pub fn eval(&self, batch: &Batch) -> Result<Vector> {
        match self {
            Expr::Col(i) => Ok(batch.column(*i).clone()),
            Expr::Lit(v) => {
                Vector::constant(v.data_type().unwrap_or(DataType::Int64), v, batch.n_rows())
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.eval(batch)?;
                let r = rhs.eval(batch)?;
                eval_arith_vector(*op, &l, &r)
            }
            // Boolean-valued expressions evaluate to a 0/1 I64 vector with
            // NULLs where three-valued logic says unknown.
            _ => {
                let (bits, nulls) = self.eval_bool(batch)?;
                let n = batch.n_rows();
                let mut values = vec![0i64; n];
                for i in bits.iter_ones() {
                    values[i] = 1;
                }
                Ok(Vector::I64 { values, nulls })
            }
        }
    }

    /// Vectorized predicate evaluation: the bitmap of rows where the
    /// expression is TRUE (NULL counts as not-true, per SQL).
    pub fn eval_pred(&self, batch: &Batch) -> Result<Bitmap> {
        let (mut bits, nulls) = self.eval_bool(batch)?;
        if let Some(nulls) = nulls {
            bits.subtract(&nulls);
        }
        Ok(bits)
    }

    /// Three-valued vectorized evaluation: `(true_bits, unknown_bits)`.
    /// Invariant: the two bitmaps are disjoint — a lane is TRUE, UNKNOWN,
    /// or (in neither) FALSE. Comparison kernels run over all lanes
    /// including NULL ones (whose physical values are garbage), so every
    /// producer must mask unknown lanes out of its true bits.
    fn eval_bool(&self, batch: &Batch) -> Result<(Bitmap, Option<Bitmap>)> {
        let n = batch.n_rows();
        match self {
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(batch)?;
                let r = rhs.eval(batch)?;
                let mut bits = compare_vectors(*op, &l, &r, n)?;
                let nulls = union_nulls(&l, &r, n);
                if let Some(nulls) = &nulls {
                    bits.subtract(nulls);
                }
                Ok((bits, nulls))
            }
            Expr::And(a, b) => {
                let (ab, an) = a.eval_bool(batch)?;
                let (bb, bn) = b.eval_bool(batch)?;
                let mut bits = ab.clone();
                bits.intersect_with(&bb);
                // unknown = (aU & bU) | (aU & bT) | (aT & bU)
                let nulls = merge_and_unknown(&ab, &an, &bb, &bn, n);
                Ok((bits, nulls))
            }
            Expr::Or(a, b) => {
                let (ab, an) = a.eval_bool(batch)?;
                let (bb, bn) = b.eval_bool(batch)?;
                let mut bits = ab.clone();
                bits.union_with(&bb);
                // unknown = any unknown input that isn't overridden by a TRUE
                let nulls = match (an, bn) {
                    (None, None) => None,
                    (an, bn) => {
                        let mut u = an.unwrap_or_else(|| Bitmap::zeros(n));
                        if let Some(bn) = bn {
                            u.union_with(&bn);
                        }
                        u.subtract(&bits);
                        u.any().then_some(u)
                    }
                };
                Ok((bits, nulls))
            }
            Expr::Not(e) => {
                let (mut bits, nulls) = e.eval_bool(batch)?;
                bits.negate();
                if let Some(nulls) = &nulls {
                    bits.subtract(nulls);
                }
                Ok((bits, nulls))
            }
            Expr::IsNull(e) => {
                let v = e.eval(batch)?;
                let bits = v.nulls().cloned().unwrap_or_else(|| Bitmap::zeros(n));
                Ok((bits, None))
            }
            Expr::IsNotNull(e) => {
                let v = e.eval(batch)?;
                let mut bits = Bitmap::ones(n);
                if let Some(nulls) = v.nulls() {
                    bits.subtract(nulls);
                }
                Ok((bits, None))
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(batch)?;
                let mut bits = Bitmap::zeros(n);
                match &v {
                    Vector::Str { strings, .. } => match strings {
                        StrVector::Dict { codes, dict } => {
                            // Evaluate once per distinct code, gather.
                            let code_match: Vec<bool> = (0..dict.len() as u32)
                                .map(|c| like_match(dict.str_at(c), pattern))
                                .collect();
                            for (i, &c) in codes.iter().enumerate() {
                                if code_match[c as usize] {
                                    bits.set(i);
                                }
                            }
                        }
                        StrVector::Owned(vals) => {
                            for (i, s) in vals.iter().enumerate() {
                                if like_match(s, pattern) {
                                    bits.set(i);
                                }
                            }
                        }
                    },
                    _ => return Err(Error::Type("LIKE on non-string column".into())),
                }
                let nulls = v.nulls().cloned();
                if let Some(nulls) = &nulls {
                    bits.subtract(nulls);
                }
                Ok((bits, nulls))
            }
            Expr::InList { expr, list } => {
                let v = expr.eval(batch)?;
                let mut bits = Bitmap::zeros(n);
                for item in list {
                    let c = Vector::constant(item.data_type().unwrap_or(DataType::Int64), item, n)?;
                    bits.union_with(&compare_vectors(CmpOp::Eq, &v, &c, n)?);
                }
                let nulls = v.nulls().cloned();
                if let Some(nulls) = &nulls {
                    bits.subtract(nulls);
                }
                Ok((bits, nulls))
            }
            // Non-boolean expressions used in boolean position: nonzero =
            // true (permissive, used for computed boolean columns).
            other => {
                let v = other.eval(batch)?;
                let mut bits = Bitmap::zeros(n);
                match &v {
                    Vector::I64 { values, .. } => {
                        for (i, &x) in values.iter().enumerate() {
                            if x != 0 {
                                bits.set(i);
                            }
                        }
                    }
                    _ => {
                        return Err(Error::Type(
                            "non-boolean expression in predicate position".into(),
                        ))
                    }
                }
                let nulls = v.nulls().cloned();
                if let Some(nulls) = &nulls {
                    bits.subtract(nulls);
                }
                Ok((bits, nulls))
            }
        }
    }
}

fn union_nulls(l: &Vector, r: &Vector, n: usize) -> Option<Bitmap> {
    match (l.nulls(), r.nulls()) {
        (None, None) => None,
        (a, b) => {
            let mut u = a.cloned().unwrap_or_else(|| Bitmap::zeros(n));
            if let Some(b) = b {
                u.union_with(b);
            }
            Some(u)
        }
    }
}

/// AND's unknown lanes: unknown unless either side is definitely FALSE.
fn merge_and_unknown(
    ab: &Bitmap,
    an: &Option<Bitmap>,
    bb: &Bitmap,
    bn: &Option<Bitmap>,
    n: usize,
) -> Option<Bitmap> {
    if an.is_none() && bn.is_none() {
        return None;
    }
    let mut u = an.clone().unwrap_or_else(|| Bitmap::zeros(n));
    if let Some(bn) = bn {
        u.union_with(bn);
    }
    // definitely-false lanes: (!aT & !aU) | (!bT & !bU)
    let mut a_false = ab.clone();
    a_false.negate();
    if let Some(an) = an {
        a_false.subtract(an);
    }
    let mut b_false = bb.clone();
    b_false.negate();
    if let Some(bn) = bn {
        b_false.subtract(bn);
    }
    u.subtract(&a_false);
    u.subtract(&b_false);
    u.any().then_some(u)
}

/// Vectorized comparison kernels.
fn compare_vectors(op: CmpOp, l: &Vector, r: &Vector, n: usize) -> Result<Bitmap> {
    let mut bits = Bitmap::zeros(n);
    match (l, r) {
        (Vector::I64 { values: a, .. }, Vector::I64 { values: b, .. }) => {
            cmp_loop(op, a, b, &mut bits);
        }
        (Vector::F64 { values: a, .. }, Vector::F64 { values: b, .. }) => {
            for i in 0..n {
                if op.eval(a[i].total_cmp(&b[i])) {
                    bits.set(i);
                }
            }
        }
        (Vector::I64 { values: a, .. }, Vector::F64 { values: b, .. }) => {
            for i in 0..n {
                if op.eval((a[i] as f64).total_cmp(&b[i])) {
                    bits.set(i);
                }
            }
        }
        (Vector::F64 { values: a, .. }, Vector::I64 { values: b, .. }) => {
            for i in 0..n {
                if op.eval(a[i].total_cmp(&(b[i] as f64))) {
                    bits.set(i);
                }
            }
        }
        (Vector::Str { strings: a, .. }, Vector::Str { strings: b, .. }) => {
            // Same-dictionary fast path: compare codes (dictionaries are
            // sorted, so code order == string order).
            if let (
                StrVector::Dict {
                    codes: ca,
                    dict: da,
                },
                StrVector::Dict {
                    codes: cb,
                    dict: db,
                },
            ) = (a, b)
            {
                if std::sync::Arc::ptr_eq(da, db) {
                    for i in 0..n {
                        if op.eval(ca[i].cmp(&cb[i])) {
                            bits.set(i);
                        }
                    }
                    return Ok(bits);
                }
            }
            for i in 0..n {
                if op.eval(a.get(i).as_ref().cmp(b.get(i).as_ref())) {
                    bits.set(i);
                }
            }
        }
        _ => {
            return Err(Error::Type(
                "comparison between incompatible vector types".into(),
            ))
        }
    }
    Ok(bits)
}

/// The hot inner loop, monomorphized per operator so the compiler emits a
/// branch-free (and often SIMD) kernel.
fn cmp_loop(op: CmpOp, a: &[i64], b: &[i64], bits: &mut Bitmap) {
    #[inline(always)]
    fn run(a: &[i64], b: &[i64], bits: &mut Bitmap, f: impl Fn(i64, i64) -> bool) {
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            if f(x, y) {
                bits.set(i);
            }
        }
    }
    match op {
        CmpOp::Eq => run(a, b, bits, |x, y| x == y),
        CmpOp::Ne => run(a, b, bits, |x, y| x != y),
        CmpOp::Lt => run(a, b, bits, |x, y| x < y),
        CmpOp::Le => run(a, b, bits, |x, y| x <= y),
        CmpOp::Gt => run(a, b, bits, |x, y| x > y),
        CmpOp::Ge => run(a, b, bits, |x, y| x >= y),
    }
}

fn eval_arith_scalar(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    // Float if either side is float; else integer (wrapping is an error).
    if matches!(l, Value::Float64(_)) || matches!(r, Value::Float64(_)) {
        let (a, b) = (
            l.as_f64()
                .ok_or_else(|| Error::Type(format!("non-numeric {l:?}")))?,
            r.as_f64()
                .ok_or_else(|| Error::Type(format!("non-numeric {r:?}")))?,
        );
        Ok(Value::Float64(match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    return Err(Error::Execution("division by zero".into()));
                }
                a / b
            }
        }))
    } else {
        let (a, b) = (
            l.as_i64()
                .ok_or_else(|| Error::Type(format!("non-numeric {l:?}")))?,
            r.as_i64()
                .ok_or_else(|| Error::Type(format!("non-numeric {r:?}")))?,
        );
        let out = match op {
            ArithOp::Add => a.checked_add(b),
            ArithOp::Sub => a.checked_sub(b),
            ArithOp::Mul => a.checked_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    return Err(Error::Execution("division by zero".into()));
                }
                a.checked_div(b)
            }
        };
        out.map(Value::Int64)
            .ok_or_else(|| Error::Execution("integer overflow".into()))
    }
}

fn eval_arith_vector(op: ArithOp, l: &Vector, r: &Vector) -> Result<Vector> {
    let n = l.len();
    let nulls = union_nulls(l, r, n);
    match (l, r) {
        (Vector::I64 { values: a, .. }, Vector::I64 { values: b, .. }) => {
            let mut out = Vec::with_capacity(n);
            match op {
                ArithOp::Add => {
                    for i in 0..n {
                        out.push(a[i].wrapping_add(b[i]));
                    }
                }
                ArithOp::Sub => {
                    for i in 0..n {
                        out.push(a[i].wrapping_sub(b[i]));
                    }
                }
                ArithOp::Mul => {
                    for i in 0..n {
                        out.push(a[i].wrapping_mul(b[i]));
                    }
                }
                ArithOp::Div => {
                    for i in 0..n {
                        // NULL lanes carry 0; division by zero in a live
                        // lane is an error, in a dead lane is ignored.
                        if b[i] == 0 {
                            if !nulls.as_ref().is_some_and(|x| x.get(i)) {
                                return Err(Error::Execution("division by zero".into()));
                            }
                            out.push(0);
                        } else {
                            out.push(a[i].wrapping_div(b[i]));
                        }
                    }
                }
            }
            Ok(Vector::I64 { values: out, nulls })
        }
        _ => {
            // Mixed / float arithmetic: promote both sides to f64.
            let to_f64 = |v: &Vector| -> Result<Vec<f64>> {
                Ok(match v {
                    Vector::F64 { values, .. } => values.clone(),
                    Vector::I64 { values, .. } => values.iter().map(|&x| x as f64).collect(),
                    Vector::Str { .. } => return Err(Error::Type("arithmetic on strings".into())),
                })
            };
            let a = to_f64(l)?;
            let b = to_f64(r)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match op {
                    ArithOp::Add => a[i] + b[i],
                    ArithOp::Sub => a[i] - b[i],
                    ArithOp::Mul => a[i] * b[i],
                    ArithOp::Div => a[i] / b[i], // IEEE inf/NaN semantics
                });
            }
            Ok(Vector::F64 { values: out, nulls })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::Row;

    fn batch() -> Batch {
        Batch::from_rows(
            &[DataType::Int64, DataType::Utf8, DataType::Float64],
            &[
                Row::new(vec![Value::Int64(1), Value::str("a"), Value::Float64(0.5)]),
                Row::new(vec![Value::Int64(2), Value::str("b"), Value::Null]),
                Row::new(vec![Value::Null, Value::str("c"), Value::Float64(2.5)]),
                Row::new(vec![Value::Int64(4), Value::str("a"), Value::Float64(4.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cmp_pred_matches_rows() {
        let b = batch();
        let p = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(2i64));
        assert_eq!(p.eval_pred(&b).unwrap().to_indices(), vec![1, 3]);
    }

    #[test]
    fn null_lanes_are_not_true() {
        let b = batch();
        // col0 >= 0 is unknown for the NULL row
        let p = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(0i64));
        assert_eq!(p.eval_pred(&b).unwrap().to_indices(), vec![0, 1, 3]);
        // NOT(col0 >= 0): null is still not true
        let np = Expr::Not(Box::new(p));
        assert_eq!(np.eval_pred(&b).unwrap().to_indices(), Vec::<u32>::new());
    }

    #[test]
    fn string_comparison() {
        let b = batch();
        let p = Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit("a"));
        assert_eq!(p.eval_pred(&b).unwrap().to_indices(), vec![0, 3]);
    }

    #[test]
    fn and_or_three_valued() {
        let b = batch();
        let ge2 = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(2i64)); // T at 1,3; U at 2
        let is_a = Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit("a")); // T at 0,3
        let and = Expr::and(ge2.clone(), is_a.clone());
        assert_eq!(and.eval_pred(&b).unwrap().to_indices(), vec![3]);
        let or = Expr::or(ge2, is_a);
        assert_eq!(or.eval_pred(&b).unwrap().to_indices(), vec![0, 1, 3]);
    }

    #[test]
    fn batch_and_row_agree() {
        let b = batch();
        let rows = b.to_rows();
        let exprs = [
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(3i64)),
            Expr::and(
                Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::lit(0.0)),
                Expr::cmp(CmpOp::Ne, Expr::col(1), Expr::lit("b")),
            ),
            Expr::IsNull(Box::new(Expr::col(2))),
            Expr::InList {
                expr: Box::new(Expr::col(0)),
                list: vec![Value::Int64(1), Value::Int64(4)],
            },
        ];
        for e in &exprs {
            let batch_bits = e.eval_pred(&b).unwrap();
            for (i, row) in rows.iter().enumerate() {
                let want = matches!(e.eval_row(row).unwrap(), Value::Bool(true));
                assert_eq!(batch_bits.get(i), want, "expr {e:?} row {i}");
            }
        }
    }

    #[test]
    fn arithmetic_vectorized() {
        let b = batch();
        let e = Expr::arith(ArithOp::Mul, Expr::col(0), Expr::lit(10i64));
        let v = e.eval(&b).unwrap();
        assert_eq!(v.i64_at(1), 20);
        assert!(v.is_null(2), "null propagates");
        // float promotion
        let f = Expr::arith(ArithOp::Add, Expr::col(0), Expr::col(2));
        let v = f.eval(&b).unwrap();
        assert_eq!(v.value_at(0, DataType::Float64), Value::Float64(1.5));
        assert!(v.is_null(1) && v.is_null(2));
    }

    #[test]
    fn division_by_zero_detected() {
        let b = batch();
        let e = Expr::arith(ArithOp::Div, Expr::col(0), Expr::lit(0i64));
        assert!(e.eval(&b).is_err());
        assert!(e
            .eval_row(&Row::new(vec![
                Value::Int64(1),
                Value::str("x"),
                Value::Null
            ]))
            .is_err());
    }

    #[test]
    fn infer_types() {
        let inputs = [DataType::Int64, DataType::Utf8, DataType::Float64];
        assert_eq!(Expr::col(2).infer_type(&inputs).unwrap(), DataType::Float64);
        assert_eq!(
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(1i64))
                .infer_type(&inputs)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::arith(ArithOp::Add, Expr::col(0), Expr::col(2))
                .infer_type(&inputs)
                .unwrap(),
            DataType::Float64
        );
        assert!(Expr::col(9).infer_type(&inputs).is_err());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::and(
            Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::col(1)),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(1i64)),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1]);
    }
}

#[cfg(test)]
mod like_tests {
    use super::*;

    #[test]
    fn like_matcher_semantics() {
        let cases = [
            ("abc", "abc", true),
            ("abc", "a%", true),
            ("abc", "%c", true),
            ("abc", "%b%", true),
            ("abc", "a_c", true),
            ("abc", "a_b", false),
            ("abc", "", false),
            ("", "", true),
            ("", "%", true),
            ("abc", "%", true),
            ("abc", "abcd", false),
            ("abc", "ab", false),
            ("aXbXc", "a%b%c", true),
            ("mississippi", "%iss%pi", true),
            ("mississippi", "%iss%ippi", true),
            ("mississippi", "%iss%pix", false),
            ("aaa", "a%a%a", true),
            ("aa", "a%a%a", false),
            ("hello world", "hello%", true),
            ("héllo", "h_llo", true),
        ];
        for (s, p, want) in cases {
            assert_eq!(like_match(s, p), want, "{s:?} LIKE {p:?}");
        }
    }

    #[test]
    fn like_vectorized_matches_rowwise() {
        use cstore_common::{DataType, Row, Value};
        let rows: Vec<Row> = ["apple", "apricot", "banana", "grape"]
            .iter()
            .map(|s| Row::new(vec![Value::str(*s)]))
            .chain(std::iter::once(Row::new(vec![Value::Null])))
            .collect();
        let batch = crate::batch::Batch::from_rows(&[DataType::Utf8], &rows).unwrap();
        let e = Expr::Like {
            expr: Box::new(Expr::col(0)),
            pattern: "ap%".into(),
        };
        let bits = e.eval_pred(&batch).unwrap();
        assert_eq!(bits.to_indices(), vec![0, 1]);
        for (i, row) in rows.iter().enumerate() {
            let want = matches!(e.eval_row(row).unwrap(), Value::Bool(true));
            assert_eq!(bits.get(i), want, "row {i}");
        }
    }
}
