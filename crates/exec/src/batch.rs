//! Batches: the unit of work in batch mode.
//!
//! A batch is a set of column vectors plus a **qualifying-rows bitmap**
//! (the paper's design): filters mark rows unqualified instead of
//! compacting the batch, so downstream operators touch contiguous vectors
//! and the bitmap, not scattered rows. Operators compact only when it
//! pays (e.g. before building a hash table).

use cstore_common::{Bitmap, DataType, Result, Row, Value};

use crate::vector::Vector;

/// Default rows per batch — about a thousand, sized so a batch of a few
/// active columns stays cache-resident (the paper's rationale).
pub const BATCH_SIZE: usize = 900;

/// A batch of rows in columnar form.
#[derive(Clone, Debug)]
pub struct Batch {
    columns: Vec<Vector>,
    types: Vec<DataType>,
    /// Set bit = row is still qualified (logically present).
    qualifying: Bitmap,
}

impl Batch {
    pub fn new(types: Vec<DataType>, columns: Vec<Vector>) -> Self {
        assert_eq!(types.len(), columns.len(), "type/column count mismatch");
        let n = columns.first().map_or(0, |c| c.len());
        assert!(columns.iter().all(|c| c.len() == n), "ragged batch");
        Batch {
            columns,
            types,
            qualifying: Bitmap::ones(n),
        }
    }

    /// Build with an explicit qualifying bitmap.
    pub fn with_qualifying(types: Vec<DataType>, columns: Vec<Vector>, qualifying: Bitmap) -> Self {
        let n = columns.first().map_or(0, |c| c.len());
        assert_eq!(qualifying.len(), n, "qualifying bitmap length mismatch");
        let mut b = Batch::new(types, columns);
        b.qualifying = qualifying;
        b
    }

    /// Physical rows (qualified or not).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Qualified rows.
    pub fn n_qualifying(&self) -> usize {
        self.qualifying.count_ones()
    }

    pub fn is_empty(&self) -> bool {
        self.n_qualifying() == 0
    }

    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &Vector {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Vector] {
        &self.columns
    }

    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    pub fn data_type(&self, i: usize) -> DataType {
        self.types[i]
    }

    pub fn qualifying(&self) -> &Bitmap {
        &self.qualifying
    }

    /// AND a predicate result into the qualifying bitmap.
    pub fn filter(&mut self, matches: &Bitmap) {
        self.qualifying.intersect_with(matches);
    }

    /// Replace the qualifying bitmap (scan pushdown path).
    pub fn set_qualifying(&mut self, qualifying: Bitmap) {
        assert_eq!(qualifying.len(), self.n_rows());
        self.qualifying = qualifying;
    }

    /// Gather qualified rows into a dense batch (all rows qualifying).
    pub fn compact(&self) -> Batch {
        if self.n_qualifying() == self.n_rows() {
            return self.clone();
        }
        let idx = self.qualifying.to_indices();
        let columns = self.columns.iter().map(|c| c.gather(&idx)).collect();
        Batch::new(self.types.clone(), columns)
    }

    /// A new batch with the given columns appended.
    pub fn append_columns(mut self, types: Vec<DataType>, columns: Vec<Vector>) -> Batch {
        for c in &columns {
            assert_eq!(c.len(), self.n_rows());
        }
        self.columns.extend(columns);
        self.types.extend(types);
        self
    }

    /// A new batch keeping only the columns at `indices` (same qualifying).
    pub fn project(&self, indices: &[usize]) -> Batch {
        Batch {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            types: indices.iter().map(|&i| self.types[i]).collect(),
            qualifying: self.qualifying.clone(),
        }
    }

    /// Build a batch from rows (row→batch adapter, delta-store scan path).
    pub fn from_rows(types: &[DataType], rows: &[Row]) -> Result<Batch> {
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); types.len()];
        for row in rows {
            for (c, v) in cols.iter_mut().zip(row.values()) {
                c.push(v.clone());
            }
        }
        let columns = types
            .iter()
            .zip(cols)
            .map(|(&ty, vals)| Vector::from_values(ty, &vals))
            .collect::<Result<Vec<_>>>()?;
        Ok(Batch::new(types.to_vec(), columns))
    }

    /// Materialize qualified rows (batch→row adapter, result delivery).
    pub fn to_rows(&self) -> Vec<Row> {
        let idx = self.qualifying.to_indices();
        let mut out = Vec::with_capacity(idx.len());
        for &i in &idx {
            out.push(Row::new(
                self.columns
                    .iter()
                    .zip(&self.types)
                    .map(|(c, &ty)| c.value_at(i as usize, ty))
                    .collect(),
            ));
        }
        out
    }

    /// Approximate heap bytes (spill accounting).
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum::<usize>()
            + self.qualifying.words().len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::from_rows(
            &[DataType::Int64, DataType::Utf8],
            &(0..10)
                .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("s{i}"))]))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn from_rows_to_rows_roundtrip() {
        let b = batch();
        assert_eq!(b.n_rows(), 10);
        assert_eq!(b.n_qualifying(), 10);
        let rows = b.to_rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3].get(0), &Value::Int64(3));
        assert_eq!(rows[3].get(1), &Value::str("s3"));
    }

    #[test]
    fn filter_marks_not_moves() {
        let mut b = batch();
        let keep = Bitmap::from_bools(&[
            true, false, true, false, true, false, true, false, true, false,
        ]);
        b.filter(&keep);
        assert_eq!(b.n_rows(), 10, "physical rows untouched");
        assert_eq!(b.n_qualifying(), 5);
        let rows = b.to_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[1].get(0), &Value::Int64(2));
    }

    #[test]
    fn compact_densifies() {
        let mut b = batch();
        let keep = Bitmap::from_bools(&[false; 10].map(|_| false));
        b.filter(&keep);
        assert!(b.is_empty());
        let mut b = batch();
        let mut keep = Bitmap::zeros(10);
        keep.set(7);
        keep.set(2);
        b.filter(&keep);
        let c = b.compact();
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_qualifying(), 2);
        assert_eq!(c.column(0).i64_at(0), 2);
        assert_eq!(c.column(0).i64_at(1), 7);
    }

    #[test]
    fn project_reorders_columns() {
        let b = batch();
        let p = b.project(&[1, 0]);
        assert_eq!(p.data_type(0), DataType::Utf8);
        assert_eq!(p.data_type(1), DataType::Int64);
        assert_eq!(p.n_rows(), 10);
    }

    #[test]
    fn append_columns_grows_width() {
        let b = batch();
        let extra = Vector::from_values(
            DataType::Int64,
            &(0..10).map(|i| Value::Int64(i * 100)).collect::<Vec<_>>(),
        )
        .unwrap();
        let b = b.append_columns(vec![DataType::Int64], vec![extra]);
        assert_eq!(b.n_columns(), 3);
        assert_eq!(b.column(2).i64_at(4), 400);
    }
}
