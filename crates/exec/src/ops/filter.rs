//! Batch-mode filter.

use cstore_common::{DataType, Result};

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::{BatchOperator, BoxedBatchOp};

/// Evaluates a predicate over each batch and ANDs the result into the
/// qualifying-rows bitmap — rows are *marked*, never moved.
pub struct FilterOp {
    input: BoxedBatchOp,
    predicate: Expr,
}

impl FilterOp {
    pub fn new(input: BoxedBatchOp, predicate: Expr) -> Self {
        FilterOp { input, predicate }
    }
}

impl BatchOperator for FilterOp {
    fn output_types(&self) -> &[DataType] {
        self.input.output_types()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        while let Some(mut batch) = self.input.next()? {
            let matches = self.predicate.eval_pred(&batch)?;
            batch.filter(&matches);
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
            // Fully filtered batch: don't ship empty work downstream.
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use crate::ops::scan::BatchSource;
    use cstore_common::{Row, Value};
    use cstore_storage::pred::CmpOp;

    #[test]
    fn filters_and_skips_empty_batches() {
        let rows: Vec<Row> = (0..100).map(|i| Row::new(vec![Value::Int64(i)])).collect();
        let src = BatchSource::from_rows(vec![DataType::Int64], &rows, 10).unwrap();
        let f = FilterOp::new(
            Box::new(src),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(25i64)),
        );
        let out = collect_rows(Box::new(f)).unwrap();
        assert_eq!(out.len(), 25);
        assert_eq!(out[24].get(0), &Value::Int64(24));
    }

    #[test]
    fn stacked_filters_conjoin() {
        let rows: Vec<Row> = (0..100).map(|i| Row::new(vec![Value::Int64(i)])).collect();
        let src = BatchSource::from_rows(vec![DataType::Int64], &rows, 32).unwrap();
        let f1 = FilterOp::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(10i64)),
        );
        let f2 = FilterOp::new(
            Box::new(f1),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(20i64)),
        );
        let out = collect_rows(Box::new(f2)).unwrap();
        assert_eq!(out.len(), 10);
    }
}
