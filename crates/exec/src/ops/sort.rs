//! Batch-mode sort and Top-N.

use cstore_common::{DataType, Error, Result, Row};

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::{BatchOperator, BoxedBatchOp};
use crate::runtime::{check_deadline, ExecContext};

/// One sort key: expression + direction.
#[derive(Clone, Debug)]
pub struct SortKey {
    pub expr: Expr,
    pub descending: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            descending: false,
        }
    }

    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            descending: true,
        }
    }
}

/// Full sort (materializing), with an optional limit (Top-N). A Top-N keeps
/// only `limit` rows while consuming input, bounding memory.
pub struct SortOp {
    input: Option<BoxedBatchOp>,
    keys: Vec<SortKey>,
    limit: Option<usize>,
    offset: usize,
    ctx: ExecContext,
    output_types: Vec<DataType>,
    result: Option<std::vec::IntoIter<Batch>>,
}

impl SortOp {
    pub fn new(input: BoxedBatchOp, keys: Vec<SortKey>, ctx: ExecContext) -> Self {
        let output_types = input.output_types().to_vec();
        SortOp {
            input: Some(input),
            keys,
            limit: None,
            offset: 0,
            ctx,
            output_types,
            result: None,
        }
    }

    /// Keep only the first `limit` rows after sorting (Top-N).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Skip `offset` rows before the limit.
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    fn compare_keys(&self, ka: &Row, kb: &Row) -> std::cmp::Ordering {
        for (i, key) in self.keys.iter().enumerate() {
            let ord = ka.get(i).cmp_sql(kb.get(i));
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    fn execute(&mut self) -> Result<Vec<Batch>> {
        let mut input = self
            .input
            .take()
            .ok_or_else(|| Error::Execution("sort executed twice".into()))?;
        // Materialize (row, key-values) pairs.
        let mut items: Vec<(Row, Row)> = Vec::new();
        let retain = self.limit.map(|l| self.offset + l);
        let mut reserved_rows = 0usize;
        while let Some(batch) = input.next()? {
            check_deadline(self.ctx.deadline)?;
            let mut batch_bytes = 0usize;
            let rows = batch.to_rows();
            for row in rows {
                batch_bytes += row.approx_bytes();
                let key = Row::new(
                    self.keys
                        .iter()
                        .map(|k| k.expr.eval_row(&row))
                        .collect::<Result<Vec<_>>>()?,
                );
                items.push((row, key));
            }
            // A full sort has no spill path: reserve the materialized
            // footprint against the shared ledger and propagate the clean
            // ResourceExhausted when N concurrent sorts overrun it. (The
            // reservation is returned when the query context drops.)
            self.ctx.reserve_memory(batch_bytes)?;
            // Top-N bound: sort and truncate whenever the buffer doubles
            // past the retain bound; the freed rows go back to the ledger.
            if let Some(cap) = retain {
                if items.len() > cap * 2 + 1024 {
                    self.partial_truncate(&mut items, cap);
                    let kept: usize = items.iter().map(|(r, _)| r.approx_bytes()).sum();
                    let freed = (reserved_rows + batch_bytes).saturating_sub(kept);
                    self.ctx.release_memory(freed);
                    reserved_rows = kept;
                    continue;
                }
            }
            reserved_rows += batch_bytes;
        }
        items.sort_by(|(_, ka), (_, kb)| self.compare_keys(ka, kb));
        let mut rows: Vec<Row> = items.into_iter().map(|(r, _)| r).collect();
        if self.offset > 0 {
            rows.drain(..self.offset.min(rows.len()));
        }
        if let Some(l) = self.limit {
            rows.truncate(l);
        }
        let mut batches = Vec::new();
        for chunk in rows.chunks(self.ctx.batch_size) {
            batches.push(Batch::from_rows(&self.output_types, chunk)?);
        }
        Ok(batches)
    }

    fn partial_truncate(&self, items: &mut Vec<(Row, Row)>, cap: usize) {
        items.sort_by(|(_, ka), (_, kb)| self.compare_keys(ka, kb));
        items.truncate(cap);
    }
}

impl BatchOperator for SortOp {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.result.is_none() {
            let batches = self.execute()?;
            self.result = Some(batches.into_iter());
        }
        Ok(self.result.as_mut().and_then(Iterator::next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use crate::ops::scan::BatchSource;
    use cstore_common::Value;

    fn source() -> BoxedBatchOp {
        let rows: Vec<Row> = [(3, "c"), (1, "a"), (2, "b"), (1, "b"), (2, "a")]
            .iter()
            .map(|&(k, s)| Row::new(vec![Value::Int64(k), Value::str(s)]))
            .collect();
        Box::new(BatchSource::from_rows(vec![DataType::Int64, DataType::Utf8], &rows, 2).unwrap())
    }

    #[test]
    fn multi_key_sort() {
        let s = SortOp::new(
            source(),
            vec![SortKey::asc(Expr::col(0)), SortKey::desc(Expr::col(1))],
            ExecContext::default(),
        );
        let rows = collect_rows(Box::new(s)).unwrap();
        let got: Vec<(i64, String)> = rows
            .iter()
            .map(|r| {
                (
                    r.get(0).as_i64().unwrap(),
                    r.get(1).as_str().unwrap().to_owned(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (1, "b".into()),
                (1, "a".into()),
                (2, "b".into()),
                (2, "a".into()),
                (3, "c".into())
            ]
        );
    }

    #[test]
    fn top_n_with_offset() {
        let s = SortOp::new(
            source(),
            vec![SortKey::asc(Expr::col(0)), SortKey::asc(Expr::col(1))],
            ExecContext::default(),
        )
        .with_limit(2)
        .with_offset(1);
        let rows = collect_rows(Box::new(s)).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Int64(1));
        assert_eq!(rows[0].get(1), &Value::str("b"));
        assert_eq!(rows[1].get(0), &Value::Int64(2));
    }

    #[test]
    fn tight_ledger_fails_sort_cleanly() {
        use cstore_common::governor::MemoryLedger;
        let ledger = std::sync::Arc::new(MemoryLedger::default());
        ledger.set_limit(16);
        let ctx = ExecContext::default()
            .with_ledger(std::sync::Arc::clone(&ledger))
            .for_query();
        let s = SortOp::new(source(), vec![SortKey::asc(Expr::col(0))], ctx);
        let err = collect_rows(Box::new(s)).unwrap_err();
        assert_eq!(err.code(), "RESOURCE_EXHAUSTED", "{err}");
        assert_eq!(ledger.reserved(), 0, "failed sort leaked ledger bytes");
    }

    #[test]
    fn expired_deadline_aborts_sort() {
        let ctx = ExecContext::default().with_deadline(Some(std::time::Instant::now()));
        let s = SortOp::new(source(), vec![SortKey::asc(Expr::col(0))], ctx);
        let err = collect_rows(Box::new(s)).unwrap_err();
        assert!(err.to_string().contains("query timeout"), "{err}");
    }

    #[test]
    fn top_n_bounds_memory_over_large_input() {
        let rows: Vec<Row> = (0..10_000)
            .map(|i| Row::new(vec![Value::Int64((i * 2654435761u64 as i64) % 10_000)]))
            .collect();
        let src: BoxedBatchOp =
            Box::new(BatchSource::from_rows(vec![DataType::Int64], &rows, 512).unwrap());
        let s = SortOp::new(
            src,
            vec![SortKey::asc(Expr::col(0))],
            ExecContext::default(),
        )
        .with_limit(5);
        let out = collect_rows(Box::new(s)).unwrap();
        assert_eq!(out.len(), 5);
        let mut expect: Vec<i64> = rows.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        expect.sort_unstable();
        let got: Vec<i64> = out.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        assert_eq!(got, expect[..5].to_vec());
    }
}
