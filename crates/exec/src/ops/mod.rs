//! Physical operators.
//!
//! Two operator families, as in SQL Server:
//!
//! * **batch mode** ([`BatchOperator`]): pull-based Volcano iteration, but
//!   each `next()` returns a ~900-row columnar [`Batch`] — amortizing the
//!   per-call interpretation overhead that dominates row mode;
//! * **row mode** ([`RowOperator`], see [`crate::row_ops`]): classic one
//!   row per `next()` — the baseline the paper's 10–100× speedups are
//!   measured against.

pub mod adapters;
pub mod filter;
pub mod hash_agg;
pub mod hash_join;
pub mod introspect;
pub mod parallel;
pub mod project;
pub mod scan;
pub mod sort;
pub mod stats_op;
pub mod union;

use cstore_common::{DataType, Result, Row};

use crate::batch::Batch;

/// A pull-based batch-mode operator.
pub trait BatchOperator: Send {
    /// Types of the output columns.
    fn output_types(&self) -> &[DataType];
    /// Produce the next batch, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Batch>>;
}

/// Boxed batch operator (plan edges).
pub type BoxedBatchOp = Box<dyn BatchOperator>;

/// A pull-based row-mode operator.
pub trait RowOperator: Send {
    fn output_types(&self) -> &[DataType];
    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// Boxed row operator.
pub type BoxedRowOp = Box<dyn RowOperator>;

/// Drain a batch operator into rows (test/result-delivery helper).
pub fn collect_rows(mut op: BoxedBatchOp) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next()? {
        out.extend(batch.to_rows());
    }
    Ok(out)
}

/// Drain a row operator (test helper).
pub fn collect_row_mode(mut op: BoxedRowOp) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next()? {
        out.push(row);
    }
    Ok(out)
}
