//! Mixed-mode adapters: row↔batch boundaries.
//!
//! SQL Server plans can mix modes — a batch region feeding a row region
//! and vice versa — with explicit conversion points. These operators are
//! those points; the planner inserts them when costing chooses different
//! modes for different plan regions.

use cstore_common::{DataType, Result, Row};

use crate::batch::Batch;
use crate::ops::{BatchOperator, BoxedBatchOp, BoxedRowOp, RowOperator};

/// Collects rows from a row-mode input into batches.
pub struct RowToBatch {
    input: BoxedRowOp,
    batch_size: usize,
    types: Vec<DataType>,
    done: bool,
}

impl RowToBatch {
    pub fn new(input: BoxedRowOp, batch_size: usize) -> Self {
        let types = input.output_types().to_vec();
        RowToBatch {
            input,
            batch_size: batch_size.max(1),
            types,
            done: false,
        }
    }
}

impl BatchOperator for RowToBatch {
    fn output_types(&self) -> &[DataType] {
        &self.types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let mut rows = Vec::with_capacity(self.batch_size);
        while rows.len() < self.batch_size {
            match self.input.next()? {
                Some(row) => rows.push(row),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if rows.is_empty() {
            return Ok(None);
        }
        Ok(Some(Batch::from_rows(&self.types, &rows)?))
    }
}

/// Streams a batch-mode input one row at a time.
pub struct BatchToRow {
    input: BoxedBatchOp,
    types: Vec<DataType>,
    buffer: std::vec::IntoIter<Row>,
}

impl BatchToRow {
    pub fn new(input: BoxedBatchOp) -> Self {
        let types = input.output_types().to_vec();
        BatchToRow {
            input,
            types,
            buffer: Vec::new().into_iter(),
        }
    }
}

impl RowOperator for BatchToRow {
    fn output_types(&self) -> &[DataType] {
        &self.types
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.buffer.next() {
                return Ok(Some(row));
            }
            match self.input.next()? {
                Some(batch) => self.buffer = batch.to_rows().into_iter(),
                None => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::scan::BatchSource;
    use crate::ops::{collect_row_mode, collect_rows};
    use crate::row_ops::RowSource;
    use cstore_common::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| Row::new(vec![Value::Int64(i)])).collect()
    }

    #[test]
    fn row_to_batch_chunks() {
        let src = RowSource::new(vec![DataType::Int64], rows(10));
        let adapted = RowToBatch::new(Box::new(src), 4);
        let out = collect_rows(Box::new(adapted)).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn batch_to_row_streams() {
        let src = BatchSource::from_rows(vec![DataType::Int64], &rows(10), 3).unwrap();
        let adapted = BatchToRow::new(Box::new(src));
        let out = collect_row_mode(Box::new(adapted)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[9].get(0), &Value::Int64(9));
    }

    #[test]
    fn roundtrip_both_ways() {
        let src = RowSource::new(vec![DataType::Int64], rows(7));
        let b = RowToBatch::new(Box::new(src), 2);
        let r = BatchToRow::new(Box::new(b));
        let out = collect_row_mode(Box::new(r)).unwrap();
        assert_eq!(out, rows(7));
    }
}
