//! Batch-mode scan over a materialized `sys.*` introspection view.
//!
//! The planner materializes virtual tables at bind time (a point-in-time
//! snapshot of catalog/delta/mover state), so by the time this operator
//! runs no storage locks are involved: it filters the snapshot rows with
//! the pushed predicates, projects, and emits ordinary batches — which is
//! what makes `sys.row_groups` joinable against `sys.column_segments`
//! through the normal pipeline.

use std::sync::Arc;
use std::time::Instant;

use cstore_common::{DataType, Result, Row};
use cstore_storage::pred::ColumnPred;

use crate::batch::Batch;
use crate::ops::BatchOperator;
use crate::runtime::check_deadline;

/// Batch scan over snapshot rows with pushdown + projection.
pub struct IntrospectionScan {
    rows: Arc<Vec<Row>>,
    /// Table-column ordinals to produce, in output order.
    projection: Vec<usize>,
    /// Pushed-down predicates: (table column, predicate).
    preds: Vec<(usize, ColumnPred)>,
    batch_size: usize,
    pos: usize,
    output_types: Vec<DataType>,
    /// Per-query deadline: a huge `sys.*` snapshot (row groups × columns)
    /// can outlive `query_timeout_ms` between stats-wrapper checkpoints,
    /// so the scan checks per batch itself.
    deadline: Option<Instant>,
}

impl IntrospectionScan {
    pub fn new(
        rows: Arc<Vec<Row>>,
        table_types: &[DataType],
        projection: Vec<usize>,
        preds: Vec<(usize, ColumnPred)>,
        batch_size: usize,
        deadline: Option<Instant>,
    ) -> Self {
        let output_types = projection.iter().map(|&c| table_types[c]).collect();
        IntrospectionScan {
            rows,
            projection,
            preds,
            batch_size: batch_size.max(1),
            pos: 0,
            output_types,
            deadline,
        }
    }

    fn qualifies(&self, row: &Row) -> bool {
        self.preds
            .iter()
            .all(|(col, pred)| row.values().get(*col).is_some_and(|v| pred.matches(v)))
    }
}

impl BatchOperator for IntrospectionScan {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        check_deadline(self.deadline)?;
        let mut out: Vec<Row> = Vec::with_capacity(self.batch_size);
        while self.pos < self.rows.len() && out.len() < self.batch_size {
            let row = &self.rows[self.pos];
            self.pos += 1;
            if !self.qualifies(row) {
                continue;
            }
            let projected: Vec<_> = self
                .projection
                .iter()
                .map(|&c| row.get(c).clone())
                .collect();
            out.push(Row::new(projected));
        }
        if out.is_empty() {
            return Ok(None);
        }
        Ok(Some(Batch::from_rows(&self.output_types, &out)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use cstore_common::Value;
    use cstore_storage::pred::CmpOp;

    fn rows() -> Arc<Vec<Row>> {
        Arc::new(
            (0..10)
                .map(|i| {
                    Row::new(vec![
                        Value::Int64(i),
                        Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                    ])
                })
                .collect(),
        )
    }

    const TYPES: [DataType; 2] = [DataType::Int64, DataType::Utf8];

    #[test]
    fn scans_all_rows_in_batches() {
        let scan = IntrospectionScan::new(rows(), &TYPES, vec![0, 1], vec![], 3, None);
        let out = collect_rows(Box::new(scan)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[3].get(1), &Value::str("odd"));
    }

    #[test]
    fn pushes_predicates_and_projects() {
        let preds = vec![(
            0,
            ColumnPred::Cmp {
                op: CmpOp::Ge,
                value: Value::Int64(6),
            },
        )];
        let scan = IntrospectionScan::new(rows(), &TYPES, vec![1], preds, 100, None);
        let out = collect_rows(Box::new(scan)).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].values().len(), 1);
        assert_eq!(out[0].get(0), &Value::str("even"));
    }

    #[test]
    fn empty_view_yields_no_batches() {
        let mut scan =
            IntrospectionScan::new(Arc::new(Vec::new()), &TYPES, vec![0], vec![], 4, None);
        assert!(scan.next().unwrap().is_none());
    }

    #[test]
    fn expired_deadline_aborts_scan() {
        let mut scan = IntrospectionScan::new(
            rows(),
            &TYPES,
            vec![0, 1],
            vec![],
            3,
            Some(Instant::now() - std::time::Duration::from_millis(1)),
        );
        let err = scan.next().unwrap_err();
        assert!(err.to_string().contains("query timeout"), "{err}");
    }
}
