//! Parallel columnstore scan.
//!
//! Batch mode is built for multicore (a point the paper makes about the
//! batch engine's design); the natural unit of scan parallelism is the
//! row group. This operator partitions the snapshot's row groups across
//! worker threads, each running an ordinary [`ColumnStoreScan`] over its
//! partition and streaming batches through a bounded channel. Output
//! batch order is unspecified, as for any parallel scan.

use cstore_common::{DataType, Error, Result};
use cstore_delta::TableSnapshot;
use cstore_storage::pred::ColumnPred;
use std::sync::mpsc::{sync_channel, Receiver};

use crate::batch::Batch;
use crate::ops::scan::{ColumnStoreScan, FilterSlot};
use crate::ops::{BatchOperator, BoxedBatchOp};
use crate::runtime::ExecContext;

/// A scan that decodes row groups on `parallelism` worker threads.
pub struct ParallelScan {
    /// Partition scans, consumed when the workers start.
    partitions: Vec<ColumnStoreScan>,
    output_types: Vec<DataType>,
    running: Option<Running>,
    /// Set once a worker error has been surfaced (or the scan drained):
    /// the operator is fused and every later poll returns `Ok(None)`.
    fused: bool,
}

struct Running {
    rx: Receiver<Result<Batch>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ParallelScan {
    /// Build a scan over `snapshot` split into `parallelism` partitions.
    pub fn new(
        snapshot: TableSnapshot,
        projection: Vec<usize>,
        preds: Vec<(usize, ColumnPred)>,
        ctx: ExecContext,
        parallelism: usize,
    ) -> Self {
        let k = parallelism.max(1);
        let partitions: Vec<ColumnStoreScan> = (0..k)
            .map(|i| {
                ColumnStoreScan::new(
                    snapshot.partition(i, k),
                    projection.clone(),
                    preds.clone(),
                    ctx.clone(),
                )
            })
            .collect();
        let output_types = projection
            .iter()
            .map(|&c| snapshot.schema().field(c).data_type)
            .collect();
        ParallelScan {
            partitions,
            output_types,
            running: None,
            fused: false,
        }
    }

    /// Attach a bitmap-filter slot (propagated to every partition).
    pub fn with_bitmap_filter(mut self, col: usize, slot: FilterSlot) -> Self {
        let parts = std::mem::take(&mut self.partitions);
        self.partitions = parts
            .into_iter()
            .map(|p| p.with_bitmap_filter(col, slot.clone()))
            .collect();
        self
    }

    fn start(&mut self) {
        let scans = std::mem::take(&mut self.partitions);
        let (tx, rx) = sync_channel::<Result<Batch>>(scans.len() * 4);
        // Workers inherit the coordinating query's wait frame so their
        // blocking (contended table locks) is attributed to this query.
        let waits = cstore_common::waits::current();
        let workers = scans
            .into_iter()
            .map(|mut scan| {
                let tx = tx.clone();
                let waits = waits.clone();
                std::thread::spawn(move || {
                    let _scope = waits.map(cstore_common::waits::install);
                    loop {
                        match scan.next() {
                            Ok(Some(batch)) => {
                                if tx.send(Ok(batch)).is_err() {
                                    return; // consumer went away (e.g. LIMIT)
                                }
                            }
                            Ok(None) => return,
                            Err(e) => {
                                // lint: allow(discard) — the consumer hung up;
                                // the error has nowhere left to go
                                let _ = tx.send(Err(e));
                                return;
                            }
                        }
                    }
                })
            })
            .collect();
        self.running = Some(Running { rx, workers });
    }
}

impl BatchOperator for ParallelScan {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.fused {
            return Ok(None);
        }
        if self.running.is_none() {
            self.start();
        }
        let running = self
            .running
            .as_mut()
            .ok_or_else(|| Error::Execution("parallel scan polled before start".into()))?;
        match running.rx.recv() {
            Ok(Ok(batch)) => Ok(Some(batch)),
            // A worker errored: fuse the operator so no further batches
            // can leak out after the error escaped. Drop the receiver
            // (failing the remaining workers' sends) and join them, then
            // surface the error once; later polls return `Ok(None)`.
            Ok(Err(e)) => {
                self.fused = true;
                if let Some(running) = self.running.take() {
                    drop(running.rx);
                    for w in running.workers {
                        // lint: allow(discard) — best-effort join while
                        // propagating the first worker error
                        let _ = w.join();
                    }
                }
                Err(e)
            }
            // All senders dropped: every worker finished.
            Err(_) => {
                self.fused = true;
                for w in running.workers.drain(..) {
                    w.join()
                        .map_err(|_| Error::Execution("parallel scan worker panicked".into()))?;
                }
                Ok(None)
            }
        }
    }
}

impl Drop for ParallelScan {
    fn drop(&mut self) {
        // Dropping the receiver makes workers' sends fail; join them so no
        // thread outlives the operator.
        if let Some(running) = self.running.take() {
            drop(running.rx);
            for w in running.workers {
                // lint: allow(discard) — best-effort join in Drop; a worker
                // panic was already surfaced through the result channel
                let _ = w.join();
            }
        }
    }
}

/// Boxing helper used by the planner.
pub fn boxed(scan: ParallelScan) -> BoxedBatchOp {
    Box::new(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use cstore_common::{Field, Row, Schema, Value};
    use cstore_delta::{ColumnStoreTable, TableConfig};
    use cstore_storage::pred::CmpOp;
    use cstore_storage::SortMode;

    fn table(n: i64) -> ColumnStoreTable {
        let schema = Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::not_null("s", DataType::Utf8),
        ]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 64,
                bulk_load_threshold: 100,
                max_rowgroup_rows: 500,
                sort_mode: SortMode::Columns(vec![0]),
            },
        );
        t.bulk_insert(
            &(0..n)
                .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("s{}", i % 9))]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // A few delta rows so partition 0 carries them.
        for i in n..n + 7 {
            t.insert(Row::new(vec![Value::Int64(i), Value::str("delta")]))
                .unwrap();
        }
        t
    }

    fn keys(rows: &[Row]) -> Vec<i64> {
        let mut k: Vec<i64> = rows.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        k.sort_unstable();
        k
    }

    #[test]
    fn parallel_matches_serial() {
        let t = table(5000);
        let ctx = ExecContext::default();
        let serial = ColumnStoreScan::new(t.snapshot(), vec![0, 1], vec![], ctx.clone());
        let serial_rows = collect_rows(Box::new(serial)).unwrap();
        for k in [1usize, 2, 3, 8] {
            let par = ParallelScan::new(t.snapshot(), vec![0, 1], vec![], ctx.clone(), k);
            let par_rows = collect_rows(Box::new(par)).unwrap();
            assert_eq!(keys(&par_rows), keys(&serial_rows), "k={k}");
        }
    }

    #[test]
    fn parallel_applies_pushdown() {
        let t = table(5000);
        let preds = vec![(
            0usize,
            ColumnPred::Cmp {
                op: CmpOp::Lt,
                value: Value::Int64(1234),
            },
        )];
        let par = ParallelScan::new(t.snapshot(), vec![0], preds, ExecContext::default(), 4);
        let rows = collect_rows(Box::new(par)).unwrap();
        assert_eq!(rows.len(), 1234);
    }

    #[test]
    fn error_fuses_operator() {
        // Drive `next()` against a hand-fed channel: a batch, then a worker
        // error, then another batch that must NOT escape after the error.
        let (tx, rx) = sync_channel::<Result<Batch>>(8);
        let types = vec![DataType::Int64];
        let batch = |k: i64| {
            Batch::from_rows(&types, &[Row::new(vec![Value::Int64(k)])]).expect("test batch")
        };
        tx.send(Ok(batch(1))).unwrap();
        tx.send(Err(Error::Execution("injected worker failure".into())))
            .unwrap();
        tx.send(Ok(batch(2))).unwrap();
        let mut scan = ParallelScan {
            partitions: Vec::new(),
            output_types: types.clone(),
            running: Some(Running {
                rx,
                workers: Vec::new(),
            }),
            fused: false,
        };
        assert!(scan.next().unwrap().is_some(), "first batch flows");
        assert!(scan.next().is_err(), "worker error surfaces once");
        // Pre-fix, this poll yielded batch(2) after the error had escaped.
        assert!(scan.next().unwrap().is_none(), "fused after error");
        assert!(scan.next().unwrap().is_none(), "stays fused");
    }

    #[test]
    fn early_drop_does_not_hang() {
        let t = table(20_000);
        let mut par = ParallelScan::new(
            t.snapshot(),
            vec![0],
            vec![],
            ExecContext::default().with_batch_size(64),
            4,
        );
        // Pull one batch, then drop — workers must shut down cleanly.
        let first = par.next().unwrap();
        assert!(first.is_some());
        drop(par);
    }
}
