//! Batch-mode UNION ALL.

use cstore_common::{DataType, Error, Result};

use crate::batch::Batch;
use crate::ops::{BatchOperator, BoxedBatchOp};

/// Concatenates the batches of several inputs (schemas must match).
pub struct UnionAllOp {
    inputs: Vec<BoxedBatchOp>,
    current: usize,
    output_types: Vec<DataType>,
}

impl UnionAllOp {
    pub fn new(inputs: Vec<BoxedBatchOp>) -> Result<Self> {
        let Some(first) = inputs.first() else {
            return Err(Error::Plan("UNION ALL of zero inputs".into()));
        };
        let output_types = first.output_types().to_vec();
        for (i, input) in inputs.iter().enumerate() {
            if input.output_types() != output_types {
                return Err(Error::Type(format!(
                    "UNION ALL input {i} has mismatched column types"
                )));
            }
        }
        Ok(UnionAllOp {
            inputs,
            current: 0,
            output_types,
        })
    }
}

impl BatchOperator for UnionAllOp {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        while self.current < self.inputs.len() {
            if let Some(batch) = self.inputs[self.current].next()? {
                return Ok(Some(batch));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use crate::ops::scan::BatchSource;
    use cstore_common::{Row, Value};

    fn src(lo: i64, hi: i64) -> BoxedBatchOp {
        let rows: Vec<Row> = (lo..hi).map(|i| Row::new(vec![Value::Int64(i)])).collect();
        Box::new(BatchSource::from_rows(vec![DataType::Int64], &rows, 4).unwrap())
    }

    #[test]
    fn concatenates_inputs() {
        let u = UnionAllOp::new(vec![src(0, 5), src(5, 10), src(10, 12)]).unwrap();
        let out = collect_rows(Box::new(u)).unwrap();
        let keys: Vec<i64> = out.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        assert_eq!(keys, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_mismatched_schemas() {
        let a = src(0, 1);
        let rows = vec![Row::new(vec![Value::str("x")])];
        let b: BoxedBatchOp =
            Box::new(BatchSource::from_rows(vec![DataType::Utf8], &rows, 1).unwrap());
        assert!(UnionAllOp::new(vec![a, b]).is_err());
        assert!(UnionAllOp::new(vec![]).is_err());
    }
}
