//! Batch-mode projection (computed columns).

use cstore_common::{DataType, Result};

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::{BatchOperator, BoxedBatchOp};

/// Evaluates expressions over each batch, producing a new batch with the
/// same qualifying bitmap (expressions run over all lanes; dead lanes are
/// never observed downstream).
pub struct ProjectOp {
    input: BoxedBatchOp,
    exprs: Vec<Expr>,
    output_types: Vec<DataType>,
}

impl ProjectOp {
    pub fn new(input: BoxedBatchOp, exprs: Vec<Expr>) -> Result<Self> {
        let output_types = exprs
            .iter()
            .map(|e| e.infer_type(input.output_types()))
            .collect::<Result<Vec<_>>>()?;
        Ok(ProjectOp {
            input,
            exprs,
            output_types,
        })
    }
}

impl BatchOperator for ProjectOp {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        let columns = self
            .exprs
            .iter()
            .map(|e| e.eval(&batch))
            .collect::<Result<Vec<_>>>()?;
        Ok(Some(Batch::with_qualifying(
            self.output_types.clone(),
            columns,
            batch.qualifying().clone(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ArithOp;
    use crate::ops::collect_rows;
    use crate::ops::scan::BatchSource;
    use cstore_common::{Row, Value};

    #[test]
    fn computes_expressions() {
        let rows: Vec<Row> = (0..5)
            .map(|i| Row::new(vec![Value::Int64(i), Value::Int64(i * 10)]))
            .collect();
        let src = BatchSource::from_rows(vec![DataType::Int64, DataType::Int64], &rows, 3).unwrap();
        let p = ProjectOp::new(
            Box::new(src),
            vec![
                Expr::arith(ArithOp::Add, Expr::col(0), Expr::col(1)),
                Expr::col(0),
            ],
        )
        .unwrap();
        assert_eq!(p.output_types(), &[DataType::Int64, DataType::Int64]);
        let out = collect_rows(Box::new(p)).unwrap();
        assert_eq!(out[4].get(0), &Value::Int64(44));
        assert_eq!(out[4].get(1), &Value::Int64(4));
    }
}
