//! Batch-mode columnstore scan.
//!
//! Everything the paper pushes into the scan happens here, in order:
//!
//! 1. **segment elimination** — row groups whose min/max metadata cannot
//!    satisfy the pushed predicates are skipped without touching data;
//! 2. **predicate pushdown** — surviving groups evaluate predicates
//!    directly on encoded segments (code-space intervals over RLE runs /
//!    packed codes);
//! 3. **bitmap filters** — semi-join filters installed by a downstream
//!    hash join drop probe rows that cannot join;
//! 4. only then are the *projected* columns decoded, and only for groups
//!    that still have qualifying rows.
//!
//! Delta-store rows have no segments; they are filtered row-at-a-time and
//! delivered through the same batch interface (the paper's scans do the
//!    same union of compressed + delta data).

use std::sync::{Arc, OnceLock};

use cstore_common::{Bitmap, DataType, Error, Result, Row};
use cstore_delta::TableSnapshot;
use cstore_storage::pred::ColumnPred;

use crate::batch::Batch;
use crate::bloom::BitmapFilter;
use crate::ops::BatchOperator;
use crate::runtime::ExecContext;
use crate::vector::Vector;

/// Shared slot through which a hash join publishes its bitmap filter to a
/// scan (the join builds before the scan's first `next()` is polled).
pub type FilterSlot = Arc<OnceLock<Option<BitmapFilter>>>;

/// Batch-mode scan over a table snapshot.
pub struct ColumnStoreScan {
    snapshot: TableSnapshot,
    /// Table-column ordinals to produce, in output order.
    projection: Vec<usize>,
    /// Pushed-down predicates: (table column, predicate).
    preds: Vec<(usize, ColumnPred)>,
    /// Bitmap filters: (table column, slot filled by the join's build).
    filters: Vec<(usize, FilterSlot)>,
    ctx: ExecContext,
    output_types: Vec<DataType>,
    state: Option<ScanState>,
}

struct ScanState {
    /// (decoded projected vectors, qualifying bitmap) per surviving group,
    /// consumed lazily.
    pending_groups: Vec<usize>,
    current: Option<GroupCursor>,
    delta_done: bool,
}

struct GroupCursor {
    vectors: Vec<Vector>,
    qualifying: Bitmap,
    offset: usize,
}

impl ColumnStoreScan {
    pub fn new(
        snapshot: TableSnapshot,
        projection: Vec<usize>,
        preds: Vec<(usize, ColumnPred)>,
        ctx: ExecContext,
    ) -> Self {
        let output_types = projection
            .iter()
            .map(|&c| snapshot.schema().field(c).data_type)
            .collect();
        ColumnStoreScan {
            snapshot,
            projection,
            preds,
            filters: Vec::new(),
            ctx,
            output_types,
            state: None,
        }
    }

    /// Attach a bitmap-filter slot on table column `col`.
    pub fn with_bitmap_filter(mut self, col: usize, slot: FilterSlot) -> Self {
        self.filters.push((col, slot));
        self
    }

    /// The lazily-installed scan state; `next` populates it on first poll.
    fn state_mut(&mut self) -> Result<&mut ScanState> {
        self.state
            .as_mut()
            .ok_or_else(|| Error::Execution("scan polled before initialization".into()))
    }

    fn init(&mut self) -> Result<ScanState> {
        let total = self.snapshot.groups().len();
        let mut pending_groups = Vec::new();
        for (idx, g) in self.snapshot.groups().iter().enumerate() {
            if g.may_match(&self.preds) {
                pending_groups.push(idx);
            }
        }
        self.ctx.metrics.add(
            &self.ctx.metrics.groups_eliminated,
            (total - pending_groups.len()) as u64,
        );
        pending_groups.reverse(); // pop from the back in original order
        Ok(ScanState {
            pending_groups,
            current: None,
            delta_done: false,
        })
    }

    /// Build the cursor for one compressed row group, or `None` if no rows
    /// qualify (group skipped entirely after predicate evaluation).
    fn open_group(&self, group_idx: usize) -> Result<Option<GroupCursor>> {
        let g = &self.snapshot.groups()[group_idx];
        // Visible rows (delete bitmap applied).
        let mut qualifying = self.snapshot.visible_bitmap(g);
        // Predicates evaluated on encoded segments.
        for (col, pred) in &self.preds {
            if !qualifying.any() {
                break;
            }
            let seg = g.open_segment(*col)?;
            qualifying.intersect_with(&seg.eval_pred(pred)?);
        }
        if !qualifying.any() {
            return Ok(None);
        }
        // Bitmap (semi-join) filters: decode *only* the key column (cached
        // if projected), apply, and bail before touching other columns if
        // nothing survives — the whole point of pushing the filter down.
        let mut cache: Vec<Option<Vector>> = vec![None; self.projection.len()];
        for (col, slot) in &self.filters {
            if !qualifying.any() {
                break;
            }
            let Some(filter) = slot.get().and_then(|f| f.as_ref()) else {
                continue; // join had an empty or non-integer build side
            };
            let fresh;
            let decoded: &Vector = match self.projection.iter().position(|c| c == col) {
                Some(pos) => match &mut cache[pos] {
                    Some(v) => v,
                    slot @ None => {
                        *slot = Some(Vector::from_segment(g.open_segment(*col)?.decode()));
                        slot.as_ref().ok_or_else(|| {
                            Error::Execution("projection cache slot vanished".into())
                        })?
                    }
                },
                None => {
                    fresh = Vector::from_segment(g.open_segment(*col)?.decode());
                    &fresh
                }
            };
            let mut dropped = 0u64;
            let mut probed = 0u64;
            if let Vector::I64 { values, nulls } = decoded {
                for i in qualifying.to_indices() {
                    let i = i as usize;
                    probed += 1;
                    let is_null = nulls.as_ref().is_some_and(|n| n.get(i));
                    if is_null || !filter.maybe_contains(values[i]) {
                        qualifying.clear(i);
                        dropped += 1;
                    }
                }
            }
            self.ctx
                .metrics
                .add(&self.ctx.metrics.bitmap_probes, probed);
            self.ctx
                .metrics
                .add(&self.ctx.metrics.rows_dropped_by_bitmap, dropped);
        }
        if !qualifying.any() {
            return Ok(None);
        }
        self.ctx.metrics.add(&self.ctx.metrics.groups_scanned, 1);
        self.ctx.metrics.add(
            &self.ctx.metrics.rows_scanned,
            qualifying.count_ones() as u64,
        );
        // Decode the remaining projected columns only now.
        let vectors = cache
            .into_iter()
            .zip(&self.projection)
            .map(|(cached, &c)| match cached {
                Some(v) => Ok(v),
                None => Ok(Vector::from_segment(g.open_segment(c)?.decode())),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Some(GroupCursor {
            vectors,
            qualifying,
            offset: 0,
        }))
    }

    /// Produce the next batch from the current group cursor: a contiguous
    /// slice when the window is dense, a gather of just the qualifying
    /// rows when it is sparse (so heavily filtered scans don't copy dead
    /// lanes downstream).
    fn next_from_cursor(&self, cur: &mut GroupCursor) -> Option<Batch> {
        let n = cur.qualifying.len();
        while cur.offset < n {
            let len = self.ctx.batch_size.min(n - cur.offset);
            let offset = cur.offset;
            cur.offset += len;
            let mut qual = Bitmap::zeros(len);
            let mut idx: Vec<u32> = Vec::new();
            for i in 0..len {
                if cur.qualifying.get(offset + i) {
                    qual.set(i);
                    idx.push((offset + i) as u32);
                }
            }
            if idx.is_empty() {
                continue; // a fully dead stretch: skip without materializing
            }
            self.ctx.metrics.add(&self.ctx.metrics.batches, 1);
            // Sparse: gather survivors into a dense batch.
            if idx.len() * 8 < len {
                let columns = cur.vectors.iter().map(|v| v.gather(&idx)).collect();
                return Some(Batch::new(self.output_types.clone(), columns));
            }
            let columns = cur.vectors.iter().map(|v| v.slice(offset, len)).collect();
            return Some(Batch::with_qualifying(
                self.output_types.clone(),
                columns,
                qual,
            ));
        }
        None
    }

    /// Batches from delta rows (filtered row-at-a-time).
    fn delta_batches(&self) -> Result<Option<Batch>> {
        // Collect all qualifying delta rows once; small by construction.
        let mut rows: Vec<Row> = Vec::new();
        'rows: for (_, row) in self.snapshot.delta_rows() {
            for (col, pred) in &self.preds {
                if !pred.matches(row.get(*col)) {
                    continue 'rows;
                }
            }
            for (col, slot) in &self.filters {
                if let Some(filter) = slot.get().and_then(|f| f.as_ref()) {
                    self.ctx.metrics.add(&self.ctx.metrics.bitmap_probes, 1);
                    match row.get(*col).as_i64() {
                        Some(k) if filter.maybe_contains(k) => {}
                        _ => {
                            self.ctx
                                .metrics
                                .add(&self.ctx.metrics.rows_dropped_by_bitmap, 1);
                            continue 'rows;
                        }
                    }
                }
            }
            rows.push(row.project(&self.projection));
        }
        if rows.is_empty() {
            return Ok(None);
        }
        self.ctx
            .metrics
            .add(&self.ctx.metrics.rows_scanned, rows.len() as u64);
        self.ctx
            .metrics
            .add(&self.ctx.metrics.rows_scanned_delta, rows.len() as u64);
        self.ctx.metrics.add(&self.ctx.metrics.batches, 1);
        Ok(Some(Batch::from_rows(&self.output_types, &rows)?))
    }
}

impl BatchOperator for ColumnStoreScan {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.state.is_none() {
            self.state = Some(self.init()?);
        }
        loop {
            // Take the cursor out so &self methods can run while we hold it.
            if let Some(mut cursor) = self.state_mut()?.current.take() {
                if let Some(batch) = self.next_from_cursor(&mut cursor) {
                    self.state_mut()?.current = Some(cursor);
                    return Ok(Some(batch));
                }
                // Cursor exhausted: fall through to the next group.
            }
            if let Some(group_idx) = self.state_mut()?.pending_groups.pop() {
                let cursor = self.open_group(group_idx)?;
                self.state_mut()?.current = cursor;
                continue;
            }
            let state = self.state_mut()?;
            if !state.delta_done {
                state.delta_done = true;
                let b = self.delta_batches()?;
                if b.is_some() {
                    return Ok(b);
                }
            }
            return Ok(None);
        }
    }
}

/// A batch operator over a fixed list of batches (tests, intermediate
/// results).
pub struct BatchSource {
    types: Vec<DataType>,
    batches: std::vec::IntoIter<Batch>,
}

impl BatchSource {
    pub fn new(types: Vec<DataType>, batches: Vec<Batch>) -> Self {
        BatchSource {
            types,
            batches: batches.into_iter(),
        }
    }

    /// Build a source from rows, chunked into `batch_size` batches.
    pub fn from_rows(types: Vec<DataType>, rows: &[Row], batch_size: usize) -> Result<Self> {
        let mut batches = Vec::new();
        for chunk in rows.chunks(batch_size.max(1)) {
            batches.push(Batch::from_rows(&types, chunk)?);
        }
        Ok(BatchSource::new(types, batches))
    }
}

impl BatchOperator for BatchSource {
    fn output_types(&self) -> &[DataType] {
        &self.types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        Ok(self.batches.next())
    }
}

/// Build a `Value` convenience for scan tests.
#[cfg(test)]
pub(crate) fn v(i: i64) -> cstore_common::Value {
    cstore_common::Value::Int64(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use cstore_common::{Field, Schema, Value};
    use cstore_delta::{ColumnStoreTable, TableConfig};
    use cstore_storage::pred::CmpOp;
    use cstore_storage::SortMode;

    fn make_table() -> ColumnStoreTable {
        let schema = Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::not_null("cat", DataType::Utf8),
            Field::nullable("amt", DataType::Float64),
        ]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 64,
                bulk_load_threshold: 100,
                max_rowgroup_rows: 1000,
                sort_mode: SortMode::Columns(vec![0]),
            },
        );
        let rows: Vec<Row> = (0..3000)
            .map(|i| {
                Row::new(vec![
                    v(i),
                    Value::str(format!("c{}", i % 4)),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64 / 2.0)
                    },
                ])
            })
            .collect();
        t.bulk_insert(&rows).unwrap();
        // A few trickle rows in the delta store.
        for i in 3000..3010 {
            t.insert(Row::new(vec![v(i), Value::str("c0"), Value::Float64(0.0)]))
                .unwrap();
        }
        t
    }

    fn scan_all(t: &ColumnStoreTable, preds: Vec<(usize, ColumnPred)>) -> Vec<Row> {
        let ctx = ExecContext::default().with_batch_size(256);
        let scan = ColumnStoreScan::new(t.snapshot(), vec![0, 1, 2], preds, ctx);
        collect_rows(Box::new(scan)).unwrap()
    }

    #[test]
    fn full_scan_sees_everything() {
        let t = make_table();
        let rows = scan_all(&t, vec![]);
        assert_eq!(rows.len(), 3010);
    }

    #[test]
    fn pushdown_filters_rows() {
        let t = make_table();
        let rows = scan_all(
            &t,
            vec![(
                0,
                ColumnPred::Between {
                    lo: v(100),
                    hi: v(199),
                },
            )],
        );
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| {
            let k = r.get(0).as_i64().unwrap();
            (100..200).contains(&k)
        }));
    }

    #[test]
    fn elimination_skips_groups() {
        let t = make_table();
        let ctx = ExecContext::default();
        let scan = ColumnStoreScan::new(
            t.snapshot(),
            vec![0],
            vec![(
                0,
                ColumnPred::Cmp {
                    op: CmpOp::Ge,
                    value: v(2500),
                },
            )],
            ctx.clone(),
        );
        let rows = collect_rows(Box::new(scan)).unwrap();
        assert_eq!(rows.len(), 510); // 500 compressed + 10 delta
        let m = ctx.metrics.snapshot();
        let get = |name: &str| m.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(
            get("groups_eliminated"),
            2,
            "groups [0..1000) and [1000..2000) skipped"
        );
        assert_eq!(get("groups_scanned"), 1);
    }

    #[test]
    fn string_pushdown() {
        let t = make_table();
        let rows = scan_all(
            &t,
            vec![(
                1,
                ColumnPred::Cmp {
                    op: CmpOp::Eq,
                    value: Value::str("c2"),
                },
            )],
        );
        assert_eq!(rows.len(), 750);
    }

    #[test]
    fn deleted_rows_invisible_to_scan() {
        let t = make_table();
        // Delete compressed rows with k in [0, 50): they're in group 0.
        let snap = t.snapshot();
        let g0 = snap.groups()[0].id();
        for tuple in 0..50 {
            t.delete(cstore_common::RowId::new(g0, tuple)).unwrap();
        }
        let rows = scan_all(&t, vec![]);
        assert_eq!(rows.len(), 3010 - 50);
    }

    #[test]
    fn bitmap_filter_drops_rows() {
        let t = make_table();
        let slot: FilterSlot = Arc::new(OnceLock::new());
        slot.set(BitmapFilter::build(&[5, 500, 2999])).ok().unwrap();
        let ctx = ExecContext::default();
        let scan = ColumnStoreScan::new(t.snapshot(), vec![0], vec![], ctx.clone())
            .with_bitmap_filter(0, slot);
        let rows = collect_rows(Box::new(scan)).unwrap();
        let keys: Vec<i64> = rows.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        assert_eq!(keys, vec![5, 500, 2999]);
        assert!(dropped_by_bitmap(&ctx) > 0);
    }

    fn dropped_by_bitmap(ctx: &ExecContext) -> u64 {
        ctx.metrics
            .snapshot()
            .iter()
            .find(|(n, _)| *n == "rows_dropped_by_bitmap")
            .unwrap()
            .1
    }

    #[test]
    fn batch_source_chunks() {
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![v(i)])).collect();
        let mut src = BatchSource::from_rows(vec![DataType::Int64], &rows, 4).unwrap();
        let mut sizes = Vec::new();
        while let Some(b) = src.next().unwrap() {
            sizes.push(b.n_rows());
        }
        assert_eq!(sizes, vec![4, 4, 2]);
    }
}
