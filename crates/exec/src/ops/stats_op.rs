//! Stats-collecting operator wrappers.
//!
//! EXPLAIN ANALYZE needs per-operator actuals without every operator
//! carrying its own timing code: the planner wraps each physical operator
//! in a [`StatsOp`] (batch mode) or [`RowStatsOp`] (row mode) that times
//! `next()` and counts rows/batches out into an [`OpStats`] registered
//! with the query's [`ExecStats`](crate::runtime::ExecStats).
//!
//! The executor is pull-based, so the recorded wall time for an operator
//! is *inclusive* of its children — the same convention SQL Server's
//! actual-execution-plan operator times use.
//!
//! The wrappers double as the query's *deadline* checkpoints: because
//! every physical operator is wrapped, checking the per-query deadline
//! here bounds the time between checks by one operator `next()` call
//! without threading timeout logic through every operator.

use std::sync::Arc;
use std::time::Instant;

use cstore_common::{DataType, Result, Row};

use crate::batch::Batch;
use crate::ops::{BatchOperator, BoxedBatchOp, BoxedRowOp, RowOperator};
use crate::runtime::{check_deadline, OpStats};

/// Batch-mode wrapper: forwards `next()`, recording rows, batches and
/// inclusive wall time into the shared [`OpStats`]; aborts cleanly once
/// the query deadline passes.
pub struct StatsOp {
    input: BoxedBatchOp,
    stats: Arc<OpStats>,
    deadline: Option<Instant>,
}

impl StatsOp {
    pub fn new(input: BoxedBatchOp, stats: Arc<OpStats>, deadline: Option<Instant>) -> Self {
        StatsOp {
            input,
            stats,
            deadline,
        }
    }
}

impl BatchOperator for StatsOp {
    fn output_types(&self) -> &[DataType] {
        self.input.output_types()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        check_deadline(self.deadline)?;
        let start = Instant::now();
        let out = self.input.next();
        let elapsed = start.elapsed().as_nanos() as u64;
        match &out {
            Ok(Some(batch)) => self.stats.record(batch.n_qualifying() as u64, elapsed),
            _ => self.stats.record(0, elapsed),
        }
        out
    }
}

/// Row-mode wrapper: each yielded row counts as one row; a "batch" is
/// recorded per row so `batches_out` doubles as the call count.
pub struct RowStatsOp {
    input: BoxedRowOp,
    stats: Arc<OpStats>,
    deadline: Option<Instant>,
}

impl RowStatsOp {
    pub fn new(input: BoxedRowOp, stats: Arc<OpStats>, deadline: Option<Instant>) -> Self {
        RowStatsOp {
            input,
            stats,
            deadline,
        }
    }
}

impl RowOperator for RowStatsOp {
    fn output_types(&self) -> &[DataType] {
        self.input.output_types()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        check_deadline(self.deadline)?;
        let start = Instant::now();
        let out = self.input.next();
        let elapsed = start.elapsed().as_nanos() as u64;
        match &out {
            Ok(Some(_)) => self.stats.record(1, elapsed),
            _ => self.stats.record(0, elapsed),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::runtime::ExecStats;
    use cstore_common::Error;

    struct TwoBatches {
        types: Vec<DataType>,
        left: usize,
    }

    impl BatchOperator for TwoBatches {
        fn output_types(&self) -> &[DataType] {
            &self.types
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            if self.left == 0 {
                return Ok(None);
            }
            self.left -= 1;
            let rows: Vec<Row> = (0..3)
                .map(|i| Row::new(vec![cstore_common::Value::Int64(i)]))
                .collect();
            Ok(Some(Batch::from_rows(&self.types, &rows)?))
        }
    }

    #[test]
    fn stats_op_counts_rows_and_batches() {
        let stats = ExecStats::default();
        let op_stats = stats.register(0, "TwoBatches");
        let inner = Box::new(TwoBatches {
            types: vec![DataType::Int64],
            left: 2,
        });
        let mut op = StatsOp::new(inner, Arc::clone(&op_stats), None);
        let mut total = 0;
        while let Some(b) = op.next().unwrap() {
            total += b.n_qualifying();
        }
        assert_eq!(total, 6);
        assert_eq!(op_stats.rows(), 6);
        assert_eq!(op_stats.batches(), 2);
        assert!(op_stats.elapsed_nanos() > 0);
    }

    /// A synthetic slow source: every `next()` burns wall time, so a
    /// short deadline must fire between batches.
    struct SlowBatches {
        types: Vec<DataType>,
        left: usize,
    }

    impl BatchOperator for SlowBatches {
        fn output_types(&self) -> &[DataType] {
            &self.types
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            if self.left == 0 {
                return Ok(None);
            }
            self.left -= 1;
            std::thread::sleep(std::time::Duration::from_millis(20));
            let rows = vec![Row::new(vec![cstore_common::Value::Int64(1)])];
            Ok(Some(Batch::from_rows(&self.types, &rows)?))
        }
    }

    #[test]
    fn expired_deadline_aborts_with_clean_error() {
        let stats = ExecStats::default();
        let op_stats = stats.register(0, "SlowBatches");
        let inner = Box::new(SlowBatches {
            types: vec![DataType::Int64],
            left: 1_000,
        });
        let deadline = Instant::now() + std::time::Duration::from_millis(30);
        let mut op = StatsOp::new(inner, op_stats, Some(deadline));
        let err = loop {
            match op.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("deadline never fired"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Error::Execution(_)), "{err}");
        assert!(err.to_string().contains("query_timeout_ms"), "{err}");
    }

    #[test]
    fn unset_deadline_never_fires() {
        assert!(check_deadline(None).is_ok());
        assert!(check_deadline(Some(Instant::now() - std::time::Duration::from_secs(1))).is_err());
    }
}
