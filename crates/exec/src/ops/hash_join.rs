//! Batch-mode hash join.
//!
//! The paper's enhanced batch hash join, reproduced:
//!
//! * **all join types** — inner, left/right/full outer, left semi, left
//!   anti (the 2012 release supported only inner joins in batch mode);
//! * **bitmap filter generation** — after the build phase the join
//!   publishes a [`BitmapFilter`] over the build keys; the planner wires
//!   the slot into the probe-side scan so non-joining rows die at the scan;
//! * **spilling with graceful degradation** — when the build side exceeds
//!   the memory budget, both inputs hash-partition into spill files and
//!   partitions join independently (Grace hash join); performance degrades
//!   smoothly instead of falling back to row mode as in 2012.
//!
//! NULL join keys never match (SQL semantics); outer and anti joins still
//! emit the corresponding unmatched rows.

use cstore_common::{Bitmap, DataType, Error, FxHashMap, Result, Row, Value};

use crate::batch::Batch;
use crate::bloom::BitmapFilter;
use crate::ops::scan::FilterSlot;
use crate::ops::{BatchOperator, BoxedBatchOp};
use crate::runtime::{check_deadline, ExecContext};
use crate::spill::{SpillFile, SpillReader};
use crate::vector::{hash_values, Vector};

/// Join variants supported in batch mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    LeftSemi,
    LeftAnti,
}

impl JoinType {
    fn emits_unmatched_probe(self) -> bool {
        matches!(self, JoinType::LeftOuter | JoinType::FullOuter)
    }

    fn emits_unmatched_build(self) -> bool {
        matches!(self, JoinType::RightOuter | JoinType::FullOuter)
    }

    fn probe_only_output(self) -> bool {
        matches!(self, JoinType::LeftSemi | JoinType::LeftAnti)
    }
}

/// Number of spill partitions.
const SPILL_PARTITIONS: usize = 16;

/// One build-side column, stored typed so join output gathers raw values
/// (dictionary codes for strings) instead of cloning `Value`s per row.
enum BuildCol {
    I64 {
        values: Vec<i64>,
        nulls: Option<Bitmap>,
    },
    F64 {
        values: Vec<f64>,
        nulls: Option<Bitmap>,
    },
    Str {
        codes: Vec<u32>,
        dict: std::sync::Arc<cstore_storage::encode::Dictionary>,
        nulls: Option<Bitmap>,
    },
}

impl BuildCol {
    fn build(rows: &[Row], col: usize, ty: DataType) -> Result<BuildCol> {
        let n = rows.len();
        let mut nulls: Option<Bitmap> = None;
        let mark = |i: usize, nulls: &mut Option<Bitmap>| {
            nulls.get_or_insert_with(|| Bitmap::zeros(n)).set(i);
        };
        Ok(match ty {
            DataType::Utf8 => {
                // Dictionary-encode once; output gathers 4-byte codes and
                // downstream group-bys hash per distinct code.
                let dict = std::sync::Arc::new(cstore_storage::encode::Dictionary::build_str(
                    rows.iter().filter_map(|r| r.get(col).as_str()),
                ));
                let mut codes = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match r.get(col) {
                        Value::Null => {
                            mark(i, &mut nulls);
                            codes.push(0);
                        }
                        v => codes.push(dict.code_of(v).ok_or_else(|| {
                            Error::Type(format!("non-string in VARCHAR column: {v:?}"))
                        })?),
                    }
                }
                BuildCol::Str { codes, dict, nulls }
            }
            DataType::Float64 => {
                let mut values = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match r.get(col) {
                        Value::Null => {
                            mark(i, &mut nulls);
                            values.push(0.0);
                        }
                        v => values.push(v.as_f64().ok_or_else(|| {
                            Error::Type(format!("non-float in DOUBLE column: {v:?}"))
                        })?),
                    }
                }
                BuildCol::F64 { values, nulls }
            }
            _ => {
                let mut values = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match r.get(col) {
                        Value::Null => {
                            mark(i, &mut nulls);
                            values.push(0);
                        }
                        v => values.push(v.as_i64().ok_or_else(|| {
                            Error::Type(format!("non-integer in {ty} column: {v:?}"))
                        })?),
                    }
                }
                BuildCol::I64 { values, nulls }
            }
        })
    }

    /// Gather `idx` (None = outer-join null extension) into a Vector.
    fn gather(&self, idx: &[Option<u32>]) -> Vector {
        let n = idx.len();
        let mut out_nulls: Option<Bitmap> = None;
        let mark = |i: usize, nulls: &mut Option<Bitmap>| {
            nulls.get_or_insert_with(|| Bitmap::zeros(n)).set(i);
        };
        match self {
            BuildCol::I64 { values, nulls } => {
                let mut out = Vec::with_capacity(n);
                for (i, bi) in idx.iter().enumerate() {
                    match bi {
                        Some(bi) => {
                            let bi = *bi as usize;
                            if nulls.as_ref().is_some_and(|x| x.get(bi)) {
                                mark(i, &mut out_nulls);
                            }
                            out.push(values[bi]);
                        }
                        None => {
                            mark(i, &mut out_nulls);
                            out.push(0);
                        }
                    }
                }
                Vector::I64 {
                    values: out,
                    nulls: out_nulls,
                }
            }
            BuildCol::F64 { values, nulls } => {
                let mut out = Vec::with_capacity(n);
                for (i, bi) in idx.iter().enumerate() {
                    match bi {
                        Some(bi) => {
                            let bi = *bi as usize;
                            if nulls.as_ref().is_some_and(|x| x.get(bi)) {
                                mark(i, &mut out_nulls);
                            }
                            out.push(values[bi]);
                        }
                        None => {
                            mark(i, &mut out_nulls);
                            out.push(0.0);
                        }
                    }
                }
                Vector::F64 {
                    values: out,
                    nulls: out_nulls,
                }
            }
            BuildCol::Str { codes, dict, nulls } => {
                let mut out = Vec::with_capacity(n);
                for (i, bi) in idx.iter().enumerate() {
                    match bi {
                        Some(bi) => {
                            let bi = *bi as usize;
                            if nulls.as_ref().is_some_and(|x| x.get(bi)) {
                                mark(i, &mut out_nulls);
                            }
                            out.push(codes[bi]);
                        }
                        None => {
                            mark(i, &mut out_nulls);
                            out.push(0);
                        }
                    }
                }
                Vector::Str {
                    strings: crate::vector::StrVector::Dict {
                        codes: out,
                        dict: dict.clone(),
                    },
                    nulls: out_nulls,
                }
            }
        }
    }
}

/// The in-memory build-side hash table.
struct BuildTable {
    rows: Vec<Row>,
    keys: Vec<usize>,
    /// hash → indices into `rows`.
    table: FxHashMap<u64, Vec<u32>>,
    /// Build rows that matched at least one probe row (outer joins).
    matched: Bitmap,
    /// Typed fast path: the single integer-backed key per row (0 at NULL
    /// positions, which are never in `table`). Key verification compares
    /// these `i64`s directly instead of materializing `Value`s.
    fast_keys: Option<Vec<i64>>,
    /// Typed column images for output gathering.
    cols: Vec<BuildCol>,
}

impl BuildTable {
    fn build(rows: Vec<Row>, keys: &[usize], types: &[DataType]) -> Result<BuildTable> {
        let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        table.reserve(rows.len());
        for (i, row) in rows.iter().enumerate() {
            // NULL keys can never match; leave them out of the table.
            if keys.iter().any(|&k| row.get(k).is_null()) {
                continue;
            }
            let h = hash_values(keys.iter().map(|&k| row.get(k)));
            table.entry(h).or_default().push(i as u32);
        }
        let matched = Bitmap::zeros(rows.len());
        let fast_keys = (keys.len() == 1)
            .then(|| {
                rows.iter()
                    .map(|row| match row.get(keys[0]) {
                        Value::Null => Some(0),
                        v => v.as_i64(),
                    })
                    .collect::<Option<Vec<i64>>>()
            })
            .flatten();
        let cols = types
            .iter()
            .enumerate()
            .map(|(c, &ty)| BuildCol::build(&rows, c, ty))
            .collect::<Result<Vec<_>>>()?;
        Ok(BuildTable {
            rows,
            keys: keys.to_vec(),
            table,
            matched,
            fast_keys,
            cols,
        })
    }

    /// The i64 key values for bitmap-filter construction (single
    /// integer-backed key only).
    fn filter_keys(&self) -> Option<Vec<i64>> {
        if self.keys.len() != 1 {
            return None;
        }
        let k = self.keys[0];
        let mut out = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            match row.get(k) {
                Value::Null => {}
                v => out.push(v.as_i64()?),
            }
        }
        Some(out)
    }
}

/// Matches produced by probing one batch.
#[derive(Default)]
struct ProbeMatches {
    probe_idx: Vec<u32>,
    /// Parallel to `probe_idx`; `None` = outer-join null extension.
    build_idx: Vec<Option<u32>>,
}

/// Probe one *compacted* batch against the build table.
fn probe_batch(
    build: &mut BuildTable,
    batch: &Batch,
    probe_keys: &[usize],
    join_type: JoinType,
) -> ProbeMatches {
    let n = batch.n_rows();
    let mut hashes = vec![0u64; n];
    for &k in probe_keys {
        batch.column(k).hash_into(&mut hashes);
    }
    // Typed fast path: single integer key on both sides — verification is
    // a plain i64 compare instead of Value materialization.
    let fast_probe: Option<&[i64]> = match (probe_keys, batch.column(probe_keys[0])) {
        ([_], Vector::I64 { values, .. }) if build.fast_keys.is_some() => Some(values),
        _ => None,
    };
    let mut out = ProbeMatches::default();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let null_key = probe_keys.iter().any(|&k| batch.column(k).is_null(i));
        let mut any_match = false;
        if !null_key {
            if let Some(candidates) = build.table.get(&hashes[i]) {
                for &bi in candidates {
                    let eq = match (fast_probe, &build.fast_keys) {
                        (Some(pk), Some(bk)) => pk[i] == bk[bi as usize],
                        _ => {
                            let brow = &build.rows[bi as usize];
                            probe_keys.iter().zip(&build.keys).all(|(&pk, &bk)| {
                                batch
                                    .column(pk)
                                    .value_at(i, batch.data_type(pk))
                                    .eq_storage(brow.get(bk))
                            })
                        }
                    };
                    if eq {
                        any_match = true;
                        build.matched.set(bi as usize);
                        match join_type {
                            JoinType::LeftSemi => break,
                            JoinType::LeftAnti => break,
                            _ => {
                                out.probe_idx.push(i as u32);
                                out.build_idx.push(Some(bi));
                            }
                        }
                    }
                }
            }
        }
        match join_type {
            JoinType::LeftSemi if any_match => {
                out.probe_idx.push(i as u32);
                out.build_idx.push(None);
            }
            JoinType::LeftAnti if !any_match => {
                out.probe_idx.push(i as u32);
                out.build_idx.push(None);
            }
            _ if !any_match && join_type.emits_unmatched_probe() => {
                out.probe_idx.push(i as u32);
                out.build_idx.push(None);
            }
            _ => {}
        }
    }
    out
}

enum JoinState {
    NotStarted,
    /// All build rows fit in memory.
    InMemory {
        build: BuildTable,
        probe_done: bool,
        /// Cursor into unmatched build rows (right/full outer tail).
        unmatched_cursor: usize,
    },
    /// Grace hash join over spilled partitions.
    Spilled {
        partitions: std::vec::IntoIter<(SpillReader, SpillReader)>,
        current: Option<PartitionJoin>,
    },
    Done,
}

struct PartitionJoin {
    build: BuildTable,
    probe: SpillReader,
    unmatched_cursor: usize,
    probe_done: bool,
    /// Ledger bytes reserved for this partition's build table; returned
    /// when the partition finishes.
    reserved: usize,
}

/// The batch-mode hash join operator.
pub struct BatchHashJoin {
    probe_input: Option<BoxedBatchOp>,
    build_input: Option<BoxedBatchOp>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    join_type: JoinType,
    ctx: ExecContext,
    probe_types: Vec<DataType>,
    build_types: Vec<DataType>,
    output_types: Vec<DataType>,
    filter_slot: Option<FilterSlot>,
    state: JoinState,
}

impl BatchHashJoin {
    pub fn new(
        probe_input: BoxedBatchOp,
        build_input: BoxedBatchOp,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        join_type: JoinType,
        ctx: ExecContext,
    ) -> Result<Self> {
        if probe_keys.is_empty() || probe_keys.len() != build_keys.len() {
            return Err(Error::Plan("hash join key arity mismatch".into()));
        }
        let probe_types = probe_input.output_types().to_vec();
        let build_types = build_input.output_types().to_vec();
        let output_types = if join_type.probe_only_output() {
            probe_types.clone()
        } else {
            let mut t = probe_types.clone();
            t.extend(build_types.iter().copied());
            t
        };
        Ok(BatchHashJoin {
            probe_input: Some(probe_input),
            build_input: Some(build_input),
            probe_keys,
            build_keys,
            join_type,
            ctx,
            probe_types,
            build_types,
            output_types,
            filter_slot: None,
            state: JoinState::NotStarted,
        })
    }

    /// Attach the slot through which the build phase publishes its bitmap
    /// filter (the planner connects the same slot to the probe-side scan).
    pub fn with_filter_slot(mut self, slot: FilterSlot) -> Self {
        self.filter_slot = Some(slot);
        self
    }

    // ------------------------------------------------------------- build

    fn start(&mut self) -> Result<()> {
        let mut build_input = self
            .build_input
            .take()
            .ok_or_else(|| Error::Execution("join build side consumed twice".into()))?;
        let mut rows: Vec<Row> = Vec::new();
        let mut bytes = 0usize;
        let mut reserved = 0usize;
        let mut overflow = false;
        while let Some(batch) = build_input.next()? {
            check_deadline(self.ctx.deadline)?;
            let mut batch_bytes = 0usize;
            for row in batch.to_rows() {
                batch_bytes += row.approx_bytes();
                rows.push(row);
            }
            bytes += batch_bytes;
            // Reserve the increment against the shared ledger; exhaustion
            // is not an error here — it means "the machine is full, spill".
            if self.ctx.reserve_memory(batch_bytes).is_err() {
                overflow = true;
                break;
            }
            reserved += batch_bytes;
            if bytes > self.ctx.memory_budget {
                overflow = true;
                break;
            }
        }
        if !overflow {
            self.ctx
                .metrics
                .add(&self.ctx.metrics.join_build_rows, rows.len() as u64);
            let build = BuildTable::build(rows, &self.build_keys, &self.build_types)?;
            // Publish the bitmap filter before the probe side is polled.
            if let Some(slot) = &self.filter_slot {
                let filter = build
                    .filter_keys()
                    .and_then(|keys| BitmapFilter::build(&keys));
                match &filter {
                    Some(f) if f.is_exact() => self
                        .ctx
                        .metrics
                        .add(&self.ctx.metrics.bitmap_filters_exact, 1),
                    Some(_) => self
                        .ctx
                        .metrics
                        .add(&self.ctx.metrics.bitmap_filters_bloom, 1),
                    None => {}
                }
                // lint: allow(discard) — set fails only when a filter was
                // already published; the first value wins
                let _ = slot.set(filter);
            }
            self.state = JoinState::InMemory {
                build,
                probe_done: false,
                unmatched_cursor: 0,
            };
            return Ok(());
        }
        // ---- spill path: partition both sides by key hash.
        // No bitmap filter in the spill case (the build key set is not in
        // memory); publish None so the scan proceeds unfiltered.
        if let Some(slot) = &self.filter_slot {
            // lint: allow(discard) — set fails only when a filter was
            // already published; the first value wins
            let _ = slot.set(None);
        }
        let mut build_files: Vec<SpillFile> = (0..SPILL_PARTITIONS)
            .map(|_| SpillFile::create(&self.ctx.spill_dir))
            .collect::<Result<_>>()?;
        let part_of = |row: &Row, keys: &[usize]| -> usize {
            let h = hash_values(keys.iter().map(|&k| row.get(k)));
            (h >> 57) as usize % SPILL_PARTITIONS
        };
        let mut build_rows = rows.len() as u64;
        for row in rows.drain(..) {
            build_files[part_of(&row, &self.build_keys)].write_row(&row)?;
        }
        // The build rows now live on disk: return their ledger reservation.
        self.ctx.release_memory(reserved);
        while let Some(batch) = build_input.next()? {
            check_deadline(self.ctx.deadline)?;
            for row in batch.to_rows() {
                build_rows += 1;
                build_files[part_of(&row, &self.build_keys)].write_row(&row)?;
            }
        }
        self.ctx
            .metrics
            .add(&self.ctx.metrics.join_build_rows, build_rows);
        let mut probe_files: Vec<SpillFile> = (0..SPILL_PARTITIONS)
            .map(|_| SpillFile::create(&self.ctx.spill_dir))
            .collect::<Result<_>>()?;
        let mut probe_input = self
            .probe_input
            .take()
            .ok_or_else(|| Error::Execution("join probe side consumed twice".into()))?;
        while let Some(batch) = probe_input.next()? {
            check_deadline(self.ctx.deadline)?;
            for row in batch.to_rows() {
                probe_files[part_of(&row, &self.probe_keys)].write_row(&row)?;
            }
        }
        let m = &self.ctx.metrics;
        m.add(&m.partitions_spilled, SPILL_PARTITIONS as u64 * 2);
        let mut spilled_bytes = 0;
        for f in build_files.iter().chain(probe_files.iter()) {
            spilled_bytes += f.bytes_written();
        }
        m.add(&m.bytes_spilled, spilled_bytes);
        let partitions: Vec<(SpillReader, SpillReader)> = build_files
            .into_iter()
            .zip(probe_files)
            .map(|(b, p)| Ok((b.into_reader()?, p.into_reader()?)))
            .collect::<Result<_>>()?;
        self.state = JoinState::Spilled {
            partitions: partitions.into_iter(),
            current: None,
        };
        Ok(())
    }
}

impl BatchOperator for BatchHashJoin {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if matches!(self.state, JoinState::NotStarted) {
            self.start()?;
        }
        loop {
            match &mut self.state {
                JoinState::NotStarted => {
                    return Err(Error::Execution(
                        "join state machine: still NotStarted after start()".into(),
                    ))
                }
                JoinState::Done => return Ok(None),
                JoinState::InMemory {
                    build,
                    probe_done,
                    unmatched_cursor,
                } => {
                    if !*probe_done {
                        let probe = self
                            .probe_input
                            .as_mut()
                            .ok_or_else(|| Error::Execution("join probe side missing".into()))?;
                        match probe.next()? {
                            Some(batch) => {
                                let dense = batch.compact();
                                self.ctx
                                    .metrics
                                    .add(&self.ctx.metrics.join_probe_rows, dense.n_rows() as u64);
                                let m =
                                    probe_batch(build, &dense, &self.probe_keys, self.join_type);
                                // Split borrows: emit needs &self, so move
                                // the needed pieces out of the match arm.
                                let out = {
                                    let build_ref: &BuildTable = build;
                                    // SAFETY of borrow: emit takes &self and
                                    // build by shared ref; state borrow ends
                                    // before we mutate.
                                    Self::emit_static(
                                        &self.output_types,
                                        &self.build_types,
                                        self.join_type,
                                        &self.ctx,
                                        &dense,
                                        m,
                                        build_ref,
                                    )?
                                };
                                if let Some(b) = out {
                                    return Ok(Some(b));
                                }
                                continue;
                            }
                            None => {
                                *probe_done = true;
                                continue;
                            }
                        }
                    }
                    // Unmatched-build tail.
                    let out = Self::emit_unmatched_build_static(
                        &self.output_types,
                        &self.probe_types,
                        &self.build_types,
                        self.join_type,
                        self.ctx.batch_size,
                        build,
                        unmatched_cursor,
                    )?;
                    match out {
                        Some(b) => return Ok(Some(b)),
                        None => {
                            self.state = JoinState::Done;
                            return Ok(None);
                        }
                    }
                }
                JoinState::Spilled {
                    partitions,
                    current,
                } => {
                    check_deadline(self.ctx.deadline)?;
                    if current.is_none() {
                        match partitions.next() {
                            Some((build_reader, probe_reader)) => {
                                let build_rows = build_reader.read_all()?;
                                // A single partition that still cannot
                                // reserve its footprint is a clean
                                // ResourceExhausted — spilling already
                                // happened, there is nowhere left to shed.
                                let part_bytes: usize =
                                    build_rows.iter().map(|r| r.approx_bytes()).sum();
                                self.ctx.reserve_memory(part_bytes)?;
                                let build = BuildTable::build(
                                    build_rows,
                                    &self.build_keys,
                                    &self.build_types,
                                )?;
                                *current = Some(PartitionJoin {
                                    build,
                                    probe: probe_reader,
                                    unmatched_cursor: 0,
                                    probe_done: false,
                                    reserved: part_bytes,
                                });
                            }
                            None => {
                                self.state = JoinState::Done;
                                return Ok(None);
                            }
                        }
                    }
                    let Some(part) = current.as_mut() else {
                        return Err(Error::Execution("spill partition cursor missing".into()));
                    };
                    if !part.probe_done {
                        // Read a batch worth of probe rows from the file.
                        let mut rows = Vec::with_capacity(self.ctx.batch_size);
                        while rows.len() < self.ctx.batch_size {
                            match part.probe.read_row()? {
                                Some(r) => rows.push(r),
                                None => {
                                    part.probe_done = true;
                                    break;
                                }
                            }
                        }
                        if !rows.is_empty() {
                            self.ctx
                                .metrics
                                .add(&self.ctx.metrics.join_probe_rows, rows.len() as u64);
                            let batch = Batch::from_rows(&self.probe_types, &rows)?;
                            let m = probe_batch(
                                &mut part.build,
                                &batch,
                                &self.probe_keys,
                                self.join_type,
                            );
                            let out = Self::emit_static(
                                &self.output_types,
                                &self.build_types,
                                self.join_type,
                                &self.ctx,
                                &batch,
                                m,
                                &part.build,
                            )?;
                            if let Some(b) = out {
                                return Ok(Some(b));
                            }
                        }
                        continue;
                    }
                    // Partition's unmatched-build tail, then next partition.
                    let out = Self::emit_unmatched_build_static(
                        &self.output_types,
                        &self.probe_types,
                        &self.build_types,
                        self.join_type,
                        self.ctx.batch_size,
                        &part.build,
                        &mut part.unmatched_cursor,
                    )?;
                    match out {
                        Some(b) => return Ok(Some(b)),
                        None => {
                            if let Some(done) = current.take() {
                                self.ctx.release_memory(done.reserved);
                            }
                            continue;
                        }
                    }
                }
            }
        }
    }
}

impl BatchHashJoin {
    /// Borrow-friendly versions of emit/emit_unmatched_build used from
    /// inside the state match (no `&self` while `self.state` is borrowed).
    #[allow(clippy::too_many_arguments)]
    fn emit_static(
        output_types: &[DataType],
        build_types: &[DataType],
        join_type: JoinType,
        ctx: &ExecContext,
        batch: &Batch,
        matches: ProbeMatches,
        build: &BuildTable,
    ) -> Result<Option<Batch>> {
        if matches.probe_idx.is_empty() {
            return Ok(None);
        }
        let mut columns: Vec<Vector> = batch
            .columns()
            .iter()
            .map(|c| c.gather(&matches.probe_idx))
            .collect();
        if !join_type.probe_only_output() {
            debug_assert_eq!(build_types.len(), build.cols.len());
            for col in &build.cols {
                columns.push(col.gather(&matches.build_idx));
            }
        }
        ctx.metrics.add(&ctx.metrics.batches, 1);
        Ok(Some(Batch::new(output_types.to_vec(), columns)))
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_unmatched_build_static(
        output_types: &[DataType],
        probe_types: &[DataType],
        build_types: &[DataType],
        join_type: JoinType,
        batch_size: usize,
        build: &BuildTable,
        cursor: &mut usize,
    ) -> Result<Option<Batch>> {
        if !join_type.emits_unmatched_build() {
            return Ok(None);
        }
        let mut idx = Vec::with_capacity(batch_size);
        while *cursor < build.rows.len() && idx.len() < batch_size {
            if !build.matched.get(*cursor) {
                idx.push(*cursor as u32);
            }
            *cursor += 1;
        }
        if idx.is_empty() {
            return Ok(None);
        }
        let n = idx.len();
        let mut columns = Vec::with_capacity(output_types.len());
        for &ty in probe_types {
            columns.push(Vector::constant(ty, &Value::Null, n)?);
        }
        debug_assert_eq!(build_types.len(), build.cols.len());
        let gather_idx: Vec<Option<u32>> = idx.iter().map(|&b| Some(b)).collect();
        for col in &build.cols {
            columns.push(col.gather(&gather_idx));
        }
        Ok(Some(Batch::new(output_types.to_vec(), columns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use crate::ops::scan::BatchSource;

    fn probe_side() -> BoxedBatchOp {
        // (k, tag): keys 0..8 plus a NULL key row.
        let mut rows: Vec<Row> = (0..8)
            .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("p{i}"))]))
            .collect();
        rows.push(Row::new(vec![Value::Null, Value::str("pnull")]));
        Box::new(BatchSource::from_rows(vec![DataType::Int64, DataType::Utf8], &rows, 3).unwrap())
    }

    fn build_side() -> BoxedBatchOp {
        // keys 4..12 (overlap 4..8), one duplicate key 5, one NULL key.
        let mut rows: Vec<Row> = (4..12)
            .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("b{i}"))]))
            .collect();
        rows.push(Row::new(vec![Value::Int64(5), Value::str("b5x")]));
        rows.push(Row::new(vec![Value::Null, Value::str("bnull")]));
        Box::new(BatchSource::from_rows(vec![DataType::Int64, DataType::Utf8], &rows, 4).unwrap())
    }

    fn join(join_type: JoinType, ctx: ExecContext) -> Vec<Row> {
        let j = BatchHashJoin::new(probe_side(), build_side(), vec![0], vec![0], join_type, ctx)
            .unwrap();
        let mut rows = collect_rows(Box::new(j)).unwrap();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    fn keys_of(rows: &[Row], col: usize) -> Vec<Option<i64>> {
        let mut k: Vec<Option<i64>> = rows.iter().map(|r| r.get(col).as_i64()).collect();
        k.sort();
        k
    }

    #[test]
    fn inner_join_matches_overlap() {
        let rows = join(JoinType::Inner, ExecContext::default());
        // keys 4,6,7 match once; key 5 matches twice (duplicate build) = 5.
        assert_eq!(rows.len(), 5);
        assert_eq!(
            keys_of(&rows, 0),
            vec![Some(4), Some(5), Some(5), Some(6), Some(7)]
        );
        // Build columns present.
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn left_outer_keeps_unmatched_probe() {
        let rows = join(JoinType::LeftOuter, ExecContext::default());
        // 5 matches + probe keys 0,1,2,3 and the NULL-key probe row = 10.
        assert_eq!(rows.len(), 10);
        let null_extended = rows.iter().filter(|r| r.get(2).is_null()).count();
        assert_eq!(null_extended, 5);
    }

    #[test]
    fn right_outer_keeps_unmatched_build() {
        let rows = join(JoinType::RightOuter, ExecContext::default());
        // 5 matches + build keys 8,9,10,11 and NULL-key build row = 10.
        assert_eq!(rows.len(), 10);
        let null_probe = rows.iter().filter(|r| r.get(0).is_null()).count();
        assert_eq!(null_probe, 5);
    }

    #[test]
    fn full_outer_is_union() {
        let rows = join(JoinType::FullOuter, ExecContext::default());
        assert_eq!(rows.len(), 15);
    }

    #[test]
    fn semi_and_anti_partition_probe() {
        let semi = join(JoinType::LeftSemi, ExecContext::default());
        assert_eq!(keys_of(&semi, 0), vec![Some(4), Some(5), Some(6), Some(7)]);
        assert_eq!(semi[0].len(), 2, "semi join outputs probe columns only");
        let anti = join(JoinType::LeftAnti, ExecContext::default());
        // 0..4 plus the NULL-key probe row (NOT EXISTS semantics).
        assert_eq!(
            keys_of(&anti, 0),
            vec![None, Some(0), Some(1), Some(2), Some(3)]
        );
    }

    #[test]
    fn spilling_produces_identical_results() {
        for join_type in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
            JoinType::LeftSemi,
            JoinType::LeftAnti,
        ] {
            let in_mem = join(join_type, ExecContext::default());
            let tiny = ExecContext::default().with_budget(64); // force spill
            let spilled = join(join_type, tiny.clone());
            assert_eq!(in_mem, spilled, "{join_type:?} differs when spilled");
            assert!(
                Metrics::get_spilled(&tiny) > 0,
                "{join_type:?} did not actually spill"
            );
        }
    }

    struct Metrics;
    impl Metrics {
        fn get_spilled(ctx: &ExecContext) -> u64 {
            ctx.metrics
                .snapshot()
                .iter()
                .find(|(n, _)| *n == "partitions_spilled")
                .unwrap()
                .1
        }
    }

    #[test]
    fn exhausted_ledger_forces_spill_not_error() {
        use cstore_common::governor::MemoryLedger;
        // The per-operator budget is huge; only the shared ledger is tight.
        // The build side must degrade to the spill path and still produce
        // identical results.
        let ledger = std::sync::Arc::new(MemoryLedger::default());
        ledger.set_limit(256);
        let governed = ExecContext::default()
            .with_ledger(std::sync::Arc::clone(&ledger))
            .for_query();
        let spilled = join(JoinType::Inner, governed.clone());
        assert_eq!(join(JoinType::Inner, ExecContext::default()), spilled);
        assert!(
            Metrics::get_spilled(&governed) > 0,
            "tight ledger did not force a spill"
        );
        drop(governed);
        assert_eq!(ledger.reserved(), 0, "join leaked ledger bytes");
    }

    #[test]
    fn ledger_too_small_for_one_partition_fails_cleanly() {
        use cstore_common::governor::MemoryLedger;
        let ledger = std::sync::Arc::new(MemoryLedger::default());
        ledger.set_limit(8); // below even a single partition's footprint
        let ctx = ExecContext::default()
            .with_ledger(std::sync::Arc::clone(&ledger))
            .for_query();
        let j = BatchHashJoin::new(
            probe_side(),
            build_side(),
            vec![0],
            vec![0],
            JoinType::Inner,
            ctx,
        )
        .unwrap();
        let err = collect_rows(Box::new(j)).unwrap_err();
        assert_eq!(err.code(), "RESOURCE_EXHAUSTED", "{err}");
        assert_eq!(ledger.reserved(), 0, "failed join leaked ledger bytes");
    }

    #[test]
    fn expired_deadline_aborts_build_loop() {
        let ctx = ExecContext::default().with_deadline(Some(std::time::Instant::now()));
        let j = BatchHashJoin::new(
            probe_side(),
            build_side(),
            vec![0],
            vec![0],
            JoinType::Inner,
            ctx,
        )
        .unwrap();
        let err = collect_rows(Box::new(j)).unwrap_err();
        assert!(err.to_string().contains("query timeout"), "{err}");
    }

    #[test]
    fn multi_column_keys() {
        let probe_rows: Vec<Row> = vec![
            Row::new(vec![Value::Int64(1), Value::str("a")]),
            Row::new(vec![Value::Int64(1), Value::str("b")]),
            Row::new(vec![Value::Int64(2), Value::str("a")]),
        ];
        let build_rows: Vec<Row> = vec![
            Row::new(vec![Value::Int64(1), Value::str("a")]),
            Row::new(vec![Value::Int64(2), Value::str("b")]),
        ];
        let types = vec![DataType::Int64, DataType::Utf8];
        let probe = Box::new(BatchSource::from_rows(types.clone(), &probe_rows, 8).unwrap());
        let build = Box::new(BatchSource::from_rows(types, &build_rows, 8).unwrap());
        let j = BatchHashJoin::new(
            probe,
            build,
            vec![0, 1],
            vec![0, 1],
            JoinType::Inner,
            ExecContext::default(),
        )
        .unwrap();
        let rows = collect_rows(Box::new(j)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int64(1));
        assert_eq!(rows[0].get(1), &Value::str("a"));
    }

    #[test]
    fn bitmap_filter_published_on_build() {
        let slot: FilterSlot = std::sync::Arc::new(std::sync::OnceLock::new());
        let j = BatchHashJoin::new(
            probe_side(),
            build_side(),
            vec![0],
            vec![0],
            JoinType::Inner,
            ExecContext::default(),
        )
        .unwrap()
        .with_filter_slot(slot.clone());
        let _ = collect_rows(Box::new(j)).unwrap();
        let filter = slot.get().unwrap().as_ref().unwrap();
        for k in 4..12 {
            assert!(filter.maybe_contains(k));
        }
        assert!(!filter.maybe_contains(0));
    }

    #[test]
    fn key_arity_validated() {
        assert!(BatchHashJoin::new(
            probe_side(),
            build_side(),
            vec![0],
            vec![0, 1],
            JoinType::Inner,
            ExecContext::default(),
        )
        .is_err());
    }

    #[test]
    fn empty_build_side() {
        let probe = probe_side();
        let build: BoxedBatchOp = Box::new(BatchSource::new(
            vec![DataType::Int64, DataType::Utf8],
            vec![],
        ));
        let j = BatchHashJoin::new(
            probe,
            build,
            vec![0],
            vec![0],
            JoinType::LeftOuter,
            ExecContext::default(),
        )
        .unwrap();
        let rows = collect_rows(Box::new(j)).unwrap();
        assert_eq!(rows.len(), 9, "all probe rows null-extended");
        assert!(rows.iter().all(|r| r.get(2).is_null()));
    }
}
