//! Batch-mode hash aggregation (grouped and scalar).
//!
//! The paper's expanded repertoire includes batch-mode scalar aggregates
//! and grouped aggregation; both live here. Group keys hash through the
//! same vectorized path as joins; aggregate states update per batch.

use cstore_common::{DataType, Error, FxHashMap, Result, Row, Value};

use crate::batch::Batch;
use crate::expr::Expr;
use crate::ops::{BatchOperator, BoxedBatchOp};
use crate::runtime::ExecContext;
use crate::vector::Vector;

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-null values.
    Count,
    /// `COUNT(DISTINCT expr)` — counts distinct non-null values.
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate: a function and (except `COUNT(*)`) its argument.
#[derive(Clone, Debug)]
pub struct AggExpr {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

impl AggExpr {
    pub fn count_star() -> Self {
        AggExpr {
            func: AggFunc::CountStar,
            arg: None,
        }
    }

    pub fn new(func: AggFunc, arg: Expr) -> Self {
        AggExpr {
            func,
            arg: Some(arg),
        }
    }

    /// Output type of this aggregate given input column types.
    pub fn output_type(&self, inputs: &[DataType]) -> Result<DataType> {
        Ok(match self.func {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => {
                let t = self.arg_type(inputs)?;
                if t == DataType::Float64 {
                    DataType::Float64
                } else if let DataType::Decimal { scale } = t {
                    DataType::Decimal { scale }
                } else {
                    DataType::Int64
                }
            }
            AggFunc::Min | AggFunc::Max => self.arg_type(inputs)?,
        })
    }

    fn arg_type(&self, inputs: &[DataType]) -> Result<DataType> {
        self.arg
            .as_ref()
            .ok_or_else(|| Error::Plan(format!("{:?} requires an argument", self.func)))?
            .infer_type(inputs)
    }
}

/// Running state of one aggregate in one group.
#[derive(Clone, Debug)]
enum AggState {
    Count(i64),
    Distinct(cstore_common::FxHashSet<Value>),
    SumI64 {
        sum: i64,
        seen: bool,
    },
    SumF64 {
        sum: f64,
        seen: bool,
    },
    MinMax {
        best: Option<Value>,
        want_max: bool,
    },
    Avg {
        sum: f64,
        count: i64,
        /// 10^scale for decimal inputs (mantissas divide out at the end).
        divisor: f64,
    },
}

impl AggState {
    fn new(func: AggFunc, arg_ty: DataType) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::Distinct(Default::default()),
            AggFunc::Sum => {
                if arg_ty == DataType::Float64 {
                    AggState::SumF64 {
                        sum: 0.0,
                        seen: false,
                    }
                } else {
                    AggState::SumI64 {
                        sum: 0,
                        seen: false,
                    }
                }
            }
            AggFunc::Min => AggState::MinMax {
                best: None,
                want_max: false,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                want_max: true,
            },
            AggFunc::Avg => AggState::Avg {
                sum: 0.0,
                count: 0,
                divisor: match arg_ty {
                    DataType::Decimal { scale } => 10f64.powi(scale as i32),
                    _ => 1.0,
                },
            },
        }
    }

    /// Update with one value (`None` for `COUNT(*)` which has no argument).
    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(c) => {
                // COUNT(*) counts rows; COUNT(expr) counts non-null values.
                match v {
                    None => *c += 1,
                    Some(v) if !v.is_null() => *c += 1,
                    _ => {}
                }
            }
            AggState::Distinct(set) => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    if !set.contains(v) {
                        set.insert(v.clone());
                    }
                }
            }
            AggState::SumI64 { sum, seen } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let x = v
                        .as_i64()
                        .ok_or_else(|| Error::Type(format!("SUM over non-integer {v:?}")))?;
                    *sum = sum
                        .checked_add(x)
                        .ok_or_else(|| Error::Execution("SUM overflow".into()))?;
                    *seen = true;
                }
            }
            AggState::SumF64 { sum, seen } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    *sum += v
                        .as_f64()
                        .ok_or_else(|| Error::Type(format!("SUM over non-numeric {v:?}")))?;
                    *seen = true;
                }
            }
            AggState::MinMax { best, want_max } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let better = match best.as_ref() {
                        None => true,
                        Some(b) => {
                            let ord = v.cmp_sql(b);
                            if *want_max {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Avg { sum, count, .. } => {
                if let Some(v) = v.filter(|v| !v.is_null()) {
                    let x = match v {
                        Value::Decimal(m) => *m as f64,
                        _ => v
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("AVG over non-numeric {v:?}")))?,
                    };
                    *sum += x;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Typed update for integer-backed arguments (no `Value` on the path
    /// except when a Min/Max improves).
    #[inline]
    fn update_i64(&mut self, arg_ty: DataType, x: i64) -> Result<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Distinct(set) => {
                let v = Value::from_i64(arg_ty, x);
                if !set.contains(&v) {
                    set.insert(v);
                }
            }
            AggState::SumI64 { sum, seen } => {
                *sum = sum
                    .checked_add(x)
                    .ok_or_else(|| Error::Execution("SUM overflow".into()))?;
                *seen = true;
            }
            AggState::SumF64 { sum, seen } => {
                *sum += x as f64;
                *seen = true;
            }
            AggState::MinMax { best, want_max } => {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let cur = b.as_i64().unwrap_or(0);
                        if *want_max {
                            x > cur
                        } else {
                            x < cur
                        }
                    }
                };
                if better {
                    *best = Some(Value::from_i64(arg_ty, x));
                }
            }
            AggState::Avg { sum, count, .. } => {
                *sum += x as f64;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Typed update for float arguments.
    #[inline]
    fn update_f64(&mut self, x: f64) -> Result<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::Distinct(set) => {
                let v = Value::Float64(x);
                if !set.contains(&v) {
                    set.insert(v);
                }
            }
            AggState::SumF64 { sum, seen } => {
                *sum += x;
                *seen = true;
            }
            AggState::SumI64 { .. } => {
                return Err(Error::Type("integer SUM over float input".into()))
            }
            AggState::MinMax { best, want_max } => {
                let better = match best {
                    None => true,
                    Some(Value::Float64(b)) => {
                        if *want_max {
                            x.total_cmp(b).is_gt()
                        } else {
                            x.total_cmp(b).is_lt()
                        }
                    }
                    Some(_) => false,
                };
                if better {
                    *best = Some(Value::Float64(x));
                }
            }
            AggState::Avg { sum, count, .. } => {
                *sum += x;
                *count += 1;
            }
        }
        Ok(())
    }

    fn finish(self, out_ty: DataType) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(c),
            AggState::Distinct(set) => Value::Int64(set.len() as i64),
            AggState::SumI64 { sum, seen } => {
                if seen {
                    Value::from_i64(out_ty, sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumF64 { sum, seen } => {
                if seen {
                    Value::Float64(sum)
                } else {
                    Value::Null
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Avg {
                sum,
                count,
                divisor,
            } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / count as f64 / divisor)
                }
            }
        }
    }
}

/// Compare a stored group key against row `i` of the evaluated key
/// vectors, without materializing `Value`s for the row.
#[inline]
fn keys_equal(stored: &[Value], key_vecs: &[Vector], i: usize) -> bool {
    stored.iter().zip(key_vecs).all(|(s, v)| {
        if v.is_null(i) {
            return s.is_null();
        }
        match (v, s) {
            (_, Value::Null) => false,
            (Vector::I64 { values, .. }, _) => s.as_i64() == Some(values[i]),
            (Vector::F64 { values, .. }, Value::Float64(f)) => values[i].total_cmp(f).is_eq(),
            (Vector::Str { strings, .. }, Value::Str(sv)) => {
                let row_str = strings.get(i);
                std::sync::Arc::ptr_eq(row_str, sv) || row_str.as_ref() == sv.as_ref()
            }
            _ => false,
        }
    })
}

/// Hash aggregation operator. With no group-by expressions it produces a
/// single scalar row (even over empty input, per SQL).
pub struct HashAggOp {
    input: Option<BoxedBatchOp>,
    group_by: Vec<Expr>,
    aggs: Vec<AggExpr>,
    ctx: ExecContext,
    output_types: Vec<DataType>,
    agg_arg_types: Vec<DataType>,
    result: Option<std::vec::IntoIter<Batch>>,
}

impl HashAggOp {
    pub fn new(
        input: BoxedBatchOp,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
        ctx: ExecContext,
    ) -> Result<Self> {
        let in_types = input.output_types();
        let mut output_types = Vec::with_capacity(group_by.len() + aggs.len());
        for g in &group_by {
            output_types.push(g.infer_type(in_types)?);
        }
        let mut agg_arg_types = Vec::with_capacity(aggs.len());
        for a in &aggs {
            output_types.push(a.output_type(in_types)?);
            agg_arg_types.push(match &a.arg {
                Some(e) => e.infer_type(in_types)?,
                None => DataType::Int64,
            });
        }
        Ok(HashAggOp {
            input: Some(input),
            group_by,
            aggs,
            ctx,
            output_types,
            agg_arg_types,
            result: None,
        })
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.aggs
            .iter()
            .zip(&self.agg_arg_types)
            .map(|(a, &ty)| AggState::new(a.func, ty))
            .collect()
    }

    /// Update one group's states from row `i` of the evaluated argument
    /// vectors, through the typed fast paths where possible.
    #[inline]
    fn update_states(
        states: &mut [AggState],
        arg_vecs: &[Option<Vector>],
        arg_types: &[DataType],
        i: usize,
    ) -> Result<()> {
        for ((state, arg), &ty) in states.iter_mut().zip(arg_vecs).zip(arg_types) {
            match arg {
                None => state.update(None)?,
                Some(v) if v.is_null(i) => {} // NULL arguments never update
                Some(Vector::I64 { values, .. }) => state.update_i64(ty, values[i])?,
                Some(Vector::F64 { values, .. }) => state.update_f64(values[i])?,
                Some(v) => state.update(Some(&v.value_at(i, ty)))?,
            }
        }
        Ok(())
    }

    fn execute(&mut self) -> Result<Vec<Batch>> {
        let mut input = self
            .input
            .take()
            .ok_or_else(|| Error::Execution("aggregate executed twice".into()))?;
        let key_types: Vec<DataType> = self.output_types[..self.group_by.len()].to_vec();
        // Single integer-backed group key: hash on raw i64 (no Value, no
        // per-row key allocation). NULL keys get their own group.
        let fast_key = self.group_by.len() == 1 && key_types[0].is_integer_backed();
        let mut fast_map: FxHashMap<i64, u32> = FxHashMap::default();
        let mut fast_null_group: Option<u32> = None;
        let mut fast_states: Vec<Vec<AggState>> = Vec::new();
        let mut fast_keys: Vec<Value> = Vec::new();
        // Generic path: composite / string keys. Keys hash through the
        // vectorized path (dictionary-coded strings hash once per distinct
        // code); per-row work is a hash lookup plus typed verification —
        // `Value`s materialize only when a new group appears.
        let mut hash_map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut group_states: Vec<Vec<AggState>> = Vec::new();
        // Scalar aggregation starts with one implicit group.
        if self.group_by.is_empty() {
            group_keys.push(Vec::new());
            group_states.push(self.fresh_states());
        }
        let mut hashes: Vec<u64> = Vec::new();
        while let Some(batch) = input.next()? {
            let batch = batch.compact();
            let n = batch.n_rows();
            if n == 0 {
                continue;
            }
            let key_vecs = self
                .group_by
                .iter()
                .map(|g| g.eval(&batch))
                .collect::<Result<Vec<_>>>()?;
            let arg_vecs = self
                .aggs
                .iter()
                .map(|a| match &a.arg {
                    Some(e) => e.eval(&batch).map(Some),
                    None => Ok(None),
                })
                .collect::<Result<Vec<_>>>()?;
            if fast_key {
                let key_vec = &key_vecs[0];
                let Vector::I64 {
                    values: keys,
                    nulls,
                } = key_vec
                else {
                    return Err(Error::Type("integer group key expected".into()));
                };
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    let gi = if nulls.as_ref().is_some_and(|nu| nu.get(i)) {
                        *fast_null_group.get_or_insert_with(|| {
                            fast_states.push(Vec::new());
                            fast_keys.push(Value::Null);
                            (fast_states.len() - 1) as u32
                        })
                    } else {
                        match fast_map.get(&keys[i]) {
                            Some(&g) => g,
                            None => {
                                let g = fast_states.len() as u32;
                                fast_map.insert(keys[i], g);
                                fast_states.push(Vec::new());
                                fast_keys.push(Value::from_i64(key_types[0], keys[i]));
                                g
                            }
                        }
                    } as usize;
                    if fast_states[gi].is_empty() {
                        fast_states[gi] = self.fresh_states();
                    }
                    let (aggs_types, states) = (&self.agg_arg_types, &mut fast_states[gi]);
                    Self::update_states(states, &arg_vecs, aggs_types, i)?;
                }
            } else if self.group_by.is_empty() {
                for i in 0..n {
                    Self::update_states(&mut group_states[0], &arg_vecs, &self.agg_arg_types, i)?;
                }
            } else {
                hashes.clear();
                hashes.resize(n, 0);
                for kv in &key_vecs {
                    kv.hash_into(&mut hashes);
                }
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    let h = hashes[i];
                    let found = hash_map.get(&h).and_then(|cands| {
                        cands
                            .iter()
                            .copied()
                            .find(|&g| keys_equal(&group_keys[g as usize], &key_vecs, i))
                    });
                    let gi = match found {
                        Some(g) => g as usize,
                        None => {
                            let key: Vec<Value> = key_vecs
                                .iter()
                                .zip(&key_types)
                                .map(|(v, &ty)| v.value_at(i, ty))
                                .collect();
                            let g = group_keys.len() as u32;
                            group_keys.push(key);
                            group_states.push(self.fresh_states());
                            hash_map.entry(h).or_default().push(g);
                            g as usize
                        }
                    };
                    Self::update_states(&mut group_states[gi], &arg_vecs, &self.agg_arg_types, i)?;
                }
            }
        }
        // Materialize result rows.
        let n_keys = self.group_by.len();
        let mut rows: Vec<Row> = Vec::new();
        if fast_key {
            rows.reserve(fast_states.len());
            for (key, states) in fast_keys.into_iter().zip(fast_states) {
                let states = if states.is_empty() {
                    self.fresh_states()
                } else {
                    states
                };
                let mut values = vec![key];
                for (state, &ty) in states.into_iter().zip(&self.output_types[n_keys..]) {
                    values.push(state.finish(ty));
                }
                rows.push(Row::new(values));
            }
        } else {
            rows.reserve(group_keys.len());
            for (key, states) in group_keys.into_iter().zip(group_states) {
                let mut values = key;
                for (state, &ty) in states.into_iter().zip(&self.output_types[n_keys..]) {
                    values.push(state.finish(ty));
                }
                rows.push(Row::new(values));
            }
        }
        // Deterministic output order helps tests and result display.
        rows.sort();
        let mut batches = Vec::new();
        for chunk in rows.chunks(self.ctx.batch_size) {
            batches.push(Batch::from_rows(&self.output_types, chunk)?);
        }
        Ok(batches)
    }
}

impl BatchOperator for HashAggOp {
    fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.result.is_none() {
            let batches = self.execute()?;
            self.result = Some(batches.into_iter());
        }
        Ok(self.result.as_mut().and_then(Iterator::next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use crate::ops::scan::BatchSource;

    fn source() -> BoxedBatchOp {
        // (cat, amount): cats a/b/c, amount i, NULL amount when i % 5 == 0.
        let rows: Vec<Row> = (0..30)
            .map(|i| {
                Row::new(vec![
                    Value::str(["a", "b", "c"][(i % 3) as usize]),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i)
                    },
                ])
            })
            .collect();
        Box::new(BatchSource::from_rows(vec![DataType::Utf8, DataType::Int64], &rows, 7).unwrap())
    }

    #[test]
    fn grouped_aggregation() {
        let agg = HashAggOp::new(
            source(),
            vec![Expr::col(0)],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Count, Expr::col(1)),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
                AggExpr::new(AggFunc::Min, Expr::col(1)),
                AggExpr::new(AggFunc::Max, Expr::col(1)),
            ],
            ExecContext::default(),
        )
        .unwrap();
        let rows = collect_rows(Box::new(agg)).unwrap();
        assert_eq!(rows.len(), 3);
        // Group "a": i in {0,3,..,27}, nulls at 0,15; count*=10, count=8.
        let a = rows.iter().find(|r| r.get(0) == &Value::str("a")).unwrap();
        assert_eq!(a.get(1), &Value::Int64(10));
        assert_eq!(a.get(2), &Value::Int64(8));
        let sum_a: i64 = (0..30).filter(|i| i % 3 == 0 && i % 5 != 0).sum();
        assert_eq!(a.get(3), &Value::Int64(sum_a));
        assert_eq!(a.get(4), &Value::Int64(3));
        assert_eq!(a.get(5), &Value::Int64(27));
    }

    #[test]
    fn scalar_aggregation_over_empty_input() {
        let empty: BoxedBatchOp = Box::new(BatchSource::new(vec![DataType::Int64], vec![]));
        let agg = HashAggOp::new(
            empty,
            vec![],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Sum, Expr::col(0)),
                AggExpr::new(AggFunc::Avg, Expr::col(0)),
            ],
            ExecContext::default(),
        )
        .unwrap();
        let rows = collect_rows(Box::new(agg)).unwrap();
        assert_eq!(rows.len(), 1, "scalar agg yields one row even when empty");
        assert_eq!(rows[0].get(0), &Value::Int64(0));
        assert_eq!(rows[0].get(1), &Value::Null, "SUM of nothing is NULL");
        assert_eq!(rows[0].get(2), &Value::Null, "AVG of nothing is NULL");
    }

    #[test]
    fn avg_and_float_sum() {
        let rows: Vec<Row> = (1..=4)
            .map(|i| Row::new(vec![Value::Float64(i as f64)]))
            .collect();
        let src: BoxedBatchOp =
            Box::new(BatchSource::from_rows(vec![DataType::Float64], &rows, 2).unwrap());
        let agg = HashAggOp::new(
            src,
            vec![],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(0)),
                AggExpr::new(AggFunc::Avg, Expr::col(0)),
            ],
            ExecContext::default(),
        )
        .unwrap();
        let out = collect_rows(Box::new(agg)).unwrap();
        assert_eq!(out[0].get(0), &Value::Float64(10.0));
        assert_eq!(out[0].get(1), &Value::Float64(2.5));
    }

    #[test]
    fn null_group_keys_form_a_group() {
        let rows = vec![
            Row::new(vec![Value::Null, Value::Int64(1)]),
            Row::new(vec![Value::Null, Value::Int64(2)]),
            Row::new(vec![Value::Int64(7), Value::Int64(3)]),
        ];
        let src: BoxedBatchOp = Box::new(
            BatchSource::from_rows(vec![DataType::Int64, DataType::Int64], &rows, 8).unwrap(),
        );
        let agg = HashAggOp::new(
            src,
            vec![Expr::col(0)],
            vec![AggExpr::new(AggFunc::Sum, Expr::col(1))],
            ExecContext::default(),
        )
        .unwrap();
        let out = collect_rows(Box::new(agg)).unwrap();
        assert_eq!(out.len(), 2);
        let null_group = out.iter().find(|r| r.get(0).is_null()).unwrap();
        assert_eq!(null_group.get(1), &Value::Int64(3));
    }

    #[test]
    fn sum_overflow_is_an_error() {
        let rows = vec![
            Row::new(vec![Value::Int64(i64::MAX)]),
            Row::new(vec![Value::Int64(1)]),
        ];
        let src: BoxedBatchOp =
            Box::new(BatchSource::from_rows(vec![DataType::Int64], &rows, 8).unwrap());
        let mut agg = HashAggOp::new(
            src,
            vec![],
            vec![AggExpr::new(AggFunc::Sum, Expr::col(0))],
            ExecContext::default(),
        )
        .unwrap();
        assert!(agg.next().is_err());
    }
}
