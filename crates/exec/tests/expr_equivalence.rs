//! Property test: the vectorized and row-at-a-time expression evaluators
//! implement the same semantics for *arbitrary* expression trees —
//! the invariant that lets one query plan run in either mode.

use cstore_common::{DataType, Row, Value};
use cstore_exec::expr::like_match;
use cstore_exec::{ArithOp, Batch, Expr};
use cstore_storage::pred::CmpOp;
use proptest::prelude::*;

const TYPES: [DataType; 3] = [DataType::Int64, DataType::Float64, DataType::Utf8];

fn arb_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![4 => (-20i64..20).prop_map(Value::Int64), 1 => Just(Value::Null)],
        prop_oneof![4 => (-40i32..40).prop_map(|x| Value::Float64(x as f64 / 4.0)), 1 => Just(Value::Null)],
        prop_oneof![4 => "[ab]{0,3}".prop_map(Value::str), 1 => Just(Value::Null)],
    )
        .prop_map(|(a, b, c)| Row::new(vec![a, b, c]))
}

/// Random expression trees, kept type-sane by construction: numeric
/// leaves feed arithmetic/comparisons; the string column only meets
/// string comparisons and LIKE.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let num_leaf = prop_oneof![
        Just(Expr::Col(0)),
        Just(Expr::Col(1)),
        (-25i64..25).prop_map(Expr::lit),
        (-50i32..50).prop_map(|x| Expr::lit(x as f64 / 4.0)),
    ];
    let arith = (num_leaf.clone(), num_leaf.clone(), 0usize..3).prop_map(|(a, b, op)| {
        // Div excluded: division-by-zero error behavior differs by lane
        // liveness and is tested separately.
        let ops = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul];
        Expr::arith(ops[op], a, b)
    });
    let num = prop_oneof![num_leaf, arith];
    let cmp_op = (0usize..6).prop_map(|i| {
        [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][i]
    });
    let num_cmp = (num.clone(), num, cmp_op).prop_map(|(a, b, op)| Expr::cmp(op, a, b));
    let str_pred = prop_oneof![
        "[ab%_]{0,4}".prop_map(|p| Expr::Like {
            expr: Box::new(Expr::Col(2)),
            pattern: p,
        }),
        "[ab]{0,3}".prop_map(|s| Expr::cmp(CmpOp::Eq, Expr::Col(2), Expr::lit(s.as_str()))),
        Just(Expr::IsNull(Box::new(Expr::Col(2)))),
        Just(Expr::IsNotNull(Box::new(Expr::Col(0)))),
        proptest::collection::vec(-20i64..20, 0..4).prop_map(|vs| Expr::InList {
            expr: Box::new(Expr::Col(0)),
            list: vs.into_iter().map(Value::Int64).collect(),
        }),
    ];
    let atom = prop_oneof![num_cmp, str_pred];
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn batch_and_row_evaluators_agree(
        rows in proptest::collection::vec(arb_row(), 1..60),
        expr in arb_expr(),
    ) {
        let batch = Batch::from_rows(&TYPES, &rows).unwrap();
        let bits = expr.eval_pred(&batch).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let want = matches!(expr.eval_row(row).unwrap(), Value::Bool(true));
            prop_assert_eq!(
                bits.get(i), want,
                "row {} = {:?} disagrees for {:?}", i, row, expr
            );
        }
    }

    #[test]
    fn like_is_reflexive_on_literal_patterns(s in "[a-c]{0,8}") {
        // A string always matches itself and itself+% as a pattern when it
        // contains no metacharacters.
        prop_assert!(like_match(&s, &s));
        let suffix = format!("{s}%");
        prop_assert!(like_match(&s, &suffix));
        let prefixed = format!("%{s}");
        prop_assert!(like_match(&s, &prefixed));
    }
}
