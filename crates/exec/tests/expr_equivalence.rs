//! Randomized equivalence test: the vectorized and row-at-a-time
//! expression evaluators implement the same semantics for *arbitrary*
//! expression trees — the invariant that lets one query plan run in
//! either mode. A seeded `Rng` replaces proptest so the suite builds
//! offline; each case runs many independent seeds.

use cstore_common::testutil::Rng;
use cstore_common::{DataType, Row, Value};
use cstore_exec::expr::like_match;
use cstore_exec::{ArithOp, Batch, Expr};
use cstore_storage::pred::CmpOp;

const TYPES: [DataType; 3] = [DataType::Int64, DataType::Float64, DataType::Utf8];

/// A short string over {a, b}, possibly empty.
fn ab_string(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| if rng.gen_bool(0.5) { 'a' } else { 'b' })
        .collect()
}

fn random_row(rng: &mut Rng) -> Row {
    let a = if rng.gen_bool(0.2) {
        Value::Null
    } else {
        Value::Int64(rng.range_i64(-20, 20))
    };
    let b = if rng.gen_bool(0.2) {
        Value::Null
    } else {
        Value::Float64(rng.range_i64(-40, 40) as f64 / 4.0)
    };
    let c = if rng.gen_bool(0.2) {
        Value::Null
    } else {
        Value::str(ab_string(rng, 3))
    };
    Row::new(vec![a, b, c])
}

fn random_num_leaf(rng: &mut Rng) -> Expr {
    match rng.below(4) {
        0 => Expr::Col(0),
        1 => Expr::Col(1),
        2 => Expr::lit(rng.range_i64(-25, 25)),
        _ => Expr::lit(rng.range_i64(-50, 50) as f64 / 4.0),
    }
}

fn random_num(rng: &mut Rng) -> Expr {
    if rng.gen_bool(0.5) {
        random_num_leaf(rng)
    } else {
        // Div excluded: division-by-zero error behavior differs by lane
        // liveness and is tested separately.
        let ops = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul];
        let op = ops[rng.range_usize(0, ops.len())];
        Expr::arith(op, random_num_leaf(rng), random_num_leaf(rng))
    }
}

fn random_cmp_op(rng: &mut Rng) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.range_usize(0, 6)]
}

/// Random boolean atom, kept type-sane by construction: numeric leaves
/// feed arithmetic/comparisons; the string column only meets string
/// comparisons and LIKE.
fn random_atom(rng: &mut Rng) -> Expr {
    match rng.below(6) {
        0 | 1 => Expr::cmp(random_cmp_op(rng), random_num(rng), random_num(rng)),
        2 => {
            // LIKE pattern over {a, b, %, _}.
            let len = rng.range_usize(0, 5);
            let pattern: String = (0..len)
                .map(|_| ['a', 'b', '%', '_'][rng.range_usize(0, 4)])
                .collect();
            Expr::Like {
                expr: Box::new(Expr::Col(2)),
                pattern,
            }
        }
        3 => {
            let s = ab_string(rng, 3);
            Expr::cmp(CmpOp::Eq, Expr::Col(2), Expr::lit(s.as_str()))
        }
        4 => {
            if rng.gen_bool(0.5) {
                Expr::IsNull(Box::new(Expr::Col(2)))
            } else {
                Expr::IsNotNull(Box::new(Expr::Col(0)))
            }
        }
        _ => {
            let n = rng.range_usize(0, 4);
            Expr::InList {
                expr: Box::new(Expr::Col(0)),
                list: (0..n)
                    .map(|_| Value::Int64(rng.range_i64(-20, 20)))
                    .collect(),
            }
        }
    }
}

/// Random boolean expression tree with bounded depth.
fn random_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        return random_atom(rng);
    }
    match rng.below(3) {
        0 => Expr::and(random_expr(rng, depth - 1), random_expr(rng, depth - 1)),
        1 => Expr::or(random_expr(rng, depth - 1), random_expr(rng, depth - 1)),
        _ => Expr::Not(Box::new(random_expr(rng, depth - 1))),
    }
}

#[test]
fn batch_and_row_evaluators_agree() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let n_rows = rng.range_usize(1, 60);
        let rows: Vec<Row> = (0..n_rows).map(|_| random_row(&mut rng)).collect();
        let expr = random_expr(&mut rng, 3);
        let batch = Batch::from_rows(&TYPES, &rows).unwrap();
        let bits = expr.eval_pred(&batch).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let want = matches!(expr.eval_row(row).unwrap(), Value::Bool(true));
            assert_eq!(
                bits.get(i),
                want,
                "seed {seed} row {i} = {row:?} disagrees for {expr:?}"
            );
        }
    }
}

#[test]
fn like_is_reflexive_on_literal_patterns() {
    let mut rng = Rng::new(0x11CE);
    for _ in 0..500 {
        // Strings over {a, b, c} contain no metacharacters, so a string
        // always matches itself, itself+% and %+itself as a pattern.
        let len = rng.range_usize(0, 9);
        let s: String = (0..len)
            .map(|_| ['a', 'b', 'c'][rng.range_usize(0, 3)])
            .collect();
        assert!(like_match(&s, &s));
        let suffix = format!("{s}%");
        assert!(like_match(&s, &suffix));
        let prefixed = format!("%{s}");
        assert!(like_match(&s, &prefixed));
    }
}
