//! `ColumnStore`: the compressed portion of a columnstore index.
//!
//! Owns the set of compressed row groups of one table, the row-group id
//! sequence (shared with delta stores, see `cstore-delta`), the global
//! string dictionaries reused across row groups, and persistence through a
//! [`BlobStore`].

use std::sync::Arc;

use cstore_common::{convert, DataType, Result, Row, RowGroupId, Schema, Value};

use crate::blob::BlobStore;
use crate::builder::{RowGroupBuilder, SortMode};
use crate::encode::Dictionary;
use crate::pred::ColumnPred;
use crate::rowgroup::{CompressedRowGroup, CompressionLevel};
use crate::stats::SegmentDirectory;

/// What kind of blob a quarantined key held. Shared vocabulary for
/// degraded opens across the storage, delta and core layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantinedKind {
    /// A compressed row group (`<prefix>.rg<id>`).
    RowGroup(RowGroupId),
    /// A table-level row-group manifest (`<prefix>.manifest`).
    TableManifest,
    /// A delta-store blob (`<prefix>.delta`).
    Delta,
    /// A heap blob (`<prefix>.heap`).
    Heap,
}

/// One blob a degraded open dropped instead of failing, with the error
/// that disqualified it. The data the blob held is *gone* from the opened
/// database; the report is how callers learn what was lost.
#[derive(Debug, Clone)]
pub struct BlobQuarantine {
    /// The blob-store key that failed.
    pub key: String,
    /// What the blob held.
    pub kind: QuarantinedKind,
    /// Why it was dropped (missing, bad CRC, bad magic, ...).
    pub error: String,
}

/// The compressed row groups of one table.
pub struct ColumnStore {
    schema: Schema,
    groups: Vec<CompressedRowGroup>,
    /// Per-column global ("primary") dictionary candidates, populated from
    /// the first row group that dictionary-encodes the column and reused by
    /// later row groups whose values it covers.
    global_dicts: Vec<Option<Arc<Dictionary>>>,
    /// Next row-group id. Delta stores draw from the same sequence via
    /// [`ColumnStore::alloc_group_id`], so ids are unique table-wide.
    next_group_id: u32,
    /// Default sort mode for new row groups.
    sort: SortMode,
}

impl ColumnStore {
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        ColumnStore {
            schema,
            groups: Vec::new(),
            global_dicts: vec![None; n],
            next_group_id: 0,
            sort: SortMode::default(),
        }
    }

    /// Override the row-reordering policy applied when encoding row groups.
    pub fn with_sort_mode(mut self, sort: SortMode) -> Self {
        self.sort = sort;
        self
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn sort_mode(&self) -> &SortMode {
        &self.sort
    }

    /// Allocate the next row-group id (also used by delta stores).
    pub fn alloc_group_id(&mut self) -> RowGroupId {
        let id = RowGroupId(self.next_group_id);
        self.next_group_id += 1;
        id
    }

    pub fn groups(&self) -> &[CompressedRowGroup] {
        &self.groups
    }

    pub fn group_by_id(&self, id: RowGroupId) -> Option<&CompressedRowGroup> {
        self.groups.iter().find(|g| g.id() == id)
    }

    /// Total rows across all compressed row groups.
    pub fn total_rows(&self) -> usize {
        self.groups.iter().map(|g| g.n_rows()).sum()
    }

    /// Total encoded bytes, deduplicating shared (global) dictionaries so a
    /// dictionary reused by many segments is counted once — matching how
    /// SQL Server accounts primary dictionaries.
    pub fn encoded_bytes(&self) -> usize {
        let mut total = 0usize;
        let mut seen_dicts: Vec<*const Dictionary> = Vec::new();
        for g in &self.groups {
            for col in 0..g.n_columns() {
                let m = g.seg_meta(col);
                total += m.payload_bytes as usize;
                total += m.row_count.div_ceil(64) as usize * 8 * usize::from(m.null_count > 0);
            }
        }
        for g in &self.groups {
            if g.level() == CompressionLevel::Archive {
                // Archived groups already folded dictionaries into their
                // compressed bytes; recompute from scratch for them.
                continue;
            }
            for col in 0..g.n_columns() {
                if let Some(d) = g.segment(col).dictionary() {
                    let p = Arc::as_ptr(d);
                    if !seen_dicts.contains(&p) {
                        seen_dicts.push(p);
                        total += d.heap_bytes();
                    }
                }
            }
        }
        // Archived groups: replace the hot accounting with compressed sizes.
        for g in &self.groups {
            if g.level() == CompressionLevel::Archive {
                for col in 0..g.n_columns() {
                    let m = g.seg_meta(col);
                    total -= m.payload_bytes as usize;
                    total -= m.row_count.div_ceil(64) as usize * 8 * usize::from(m.null_count > 0);
                }
                total += g.encoded_bytes();
            }
        }
        total
    }

    /// Estimated size of the same data stored raw (uncompressed row-store
    /// image): the denominator of compression-ratio experiments.
    pub fn raw_bytes(&self) -> usize {
        let mut total = 0usize;
        for g in &self.groups {
            for col in 0..g.n_columns() {
                let ty = self.schema.field(col).data_type;
                match ty.fixed_width() {
                    Some(w) => total += w * g.n_rows(),
                    None => {
                        // Strings: sum of actual lengths + 2-byte length.
                        // lint: allow(unwrap) — advisory size estimate over
                        // segments this process wrote; corrupt-archive errors
                        // surface on the real read paths
                        let seg = g.open_segment(col).expect("segment readable");
                        if let crate::segment::SegmentValues::Str { codes, dict, nulls } =
                            seg.decode()
                        {
                            for (i, &c) in codes.iter().enumerate() {
                                if !nulls.as_ref().is_some_and(|n| n.get(i)) {
                                    total += dict.str_at(c).len() + 2;
                                }
                            }
                        }
                    }
                }
            }
        }
        total
    }

    /// Bulk-append rows as one or more new compressed row groups, splitting
    /// at `max_rows_per_group`. Returns the ids of the groups created.
    pub fn append_rows(
        &mut self,
        rows: &[Row],
        max_rows_per_group: usize,
    ) -> Result<Vec<RowGroupId>> {
        let mut ids = Vec::new();
        for chunk in rows.chunks(max_rows_per_group.max(1)) {
            let mut b = RowGroupBuilder::new(self.schema.clone(), self.sort.clone());
            for row in chunk {
                b.push_row(row)?;
            }
            ids.push(self.finish_builder(b)?);
        }
        Ok(ids)
    }

    /// Encode a filled builder into a row group and install it.
    pub fn finish_builder(&mut self, builder: RowGroupBuilder) -> Result<RowGroupId> {
        let id = self.alloc_group_id();
        let rg = builder.finish(id, &self.global_dicts)?;
        self.adopt_global_dicts(&rg);
        self.groups.push(rg);
        Ok(id)
    }

    /// Install an externally built row group (tuple mover path). The id
    /// must come from [`ColumnStore::alloc_group_id`].
    pub fn add_rowgroup(&mut self, rg: CompressedRowGroup) {
        assert!(
            rg.id().0 < self.next_group_id,
            "row group id {} not allocated by this store",
            rg.id()
        );
        self.adopt_global_dicts(&rg);
        self.groups.push(rg);
    }

    /// Candidate global dictionaries for the next row group.
    pub fn global_dicts(&self) -> &[Option<Arc<Dictionary>>] {
        &self.global_dicts
    }

    fn adopt_global_dicts(&mut self, rg: &CompressedRowGroup) {
        if rg.level() == CompressionLevel::Archive {
            return;
        }
        for col in 0..rg.n_columns() {
            if self.global_dicts[col].is_none()
                && self.schema.field(col).data_type == DataType::Utf8
            {
                if let Some(d) = rg.segment(col).dictionary() {
                    self.global_dicts[col] = Some(d.clone());
                }
            }
        }
    }

    /// Switch a row group to archival compression.
    pub fn archive_group(&mut self, id: RowGroupId) -> Result<()> {
        let g = self
            .groups
            .iter_mut()
            .find(|g| g.id() == id)
            .ok_or_else(|| cstore_common::Error::Storage(format!("no row group {id}")))?;
        g.archive()
    }

    /// Remove a row group (tuple-mover cleanup after a rebuild).
    pub fn remove_group(&mut self, id: RowGroupId) -> Option<CompressedRowGroup> {
        let idx = self.groups.iter().position(|g| g.id() == id)?;
        Some(self.groups.remove(idx))
    }

    /// Build the segment directory (elimination metadata snapshot).
    pub fn directory(&self) -> SegmentDirectory {
        SegmentDirectory::build(&self.groups)
    }

    /// Row-group ids surviving segment elimination under `preds`.
    pub fn surviving_groups(&self, preds: &[(usize, ColumnPred)]) -> Vec<RowGroupId> {
        self.groups
            .iter()
            .filter(|g| g.may_match(preds))
            .map(|g| g.id())
            .collect()
    }

    /// Persist all row groups into `store` under `prefix`.
    pub fn persist(&self, store: &mut dyn BlobStore, prefix: &str) -> Result<()> {
        // Manifest: list of group ids + next id.
        let mut w = crate::format::Writer::new();
        w.u32(0x4654_5343); // "CSTF"
        w.u16(crate::format::FORMAT_VERSION);
        w.u32(self.next_group_id);
        w.u32(convert::u32_from_usize(self.groups.len())?);
        for g in &self.groups {
            w.u32(g.id().0);
        }
        store.put(&format!("{prefix}.manifest"), &w.seal())?;
        for g in &self.groups {
            store.put(&format!("{prefix}.rg{}", g.id().0), &g.serialize()?)?;
        }
        Ok(())
    }

    /// Load a persisted column store (schema from the caller's catalog).
    /// Strict: the first unreadable blob fails the whole load.
    pub fn load(store: &dyn BlobStore, prefix: &str, schema: Schema) -> Result<ColumnStore> {
        Self::load_inner(store, prefix, schema, None)
    }

    /// Load a persisted column store, quarantining row-group blobs that are
    /// missing or fail to deserialize instead of failing the load. The
    /// manifest itself must still be readable — without it there is no way
    /// to know what the table held (callers quarantine the whole table).
    pub fn load_degraded(
        store: &dyn BlobStore,
        prefix: &str,
        schema: Schema,
    ) -> Result<(ColumnStore, Vec<BlobQuarantine>)> {
        let mut quarantined = Vec::new();
        let cs = Self::load_inner(store, prefix, schema, Some(&mut quarantined))?;
        Ok((cs, quarantined))
    }

    /// Parse a persisted row-group manifest: `(next_group_id, group ids)`.
    fn parse_manifest(blob: &[u8]) -> Result<(u32, Vec<u32>)> {
        let payload = crate::format::Reader::check_crc(blob)?;
        let mut r = crate::format::Reader::new(payload);
        if r.u32()? != 0x4654_5343 {
            return Err(cstore_common::Error::Storage("bad manifest magic".into()));
        }
        let version = r.u16()?;
        if version != crate::format::FORMAT_VERSION {
            return Err(cstore_common::Error::Storage(format!(
                "unsupported manifest version {version}"
            )));
        }
        let next_group_id = r.u32()?;
        let n = convert::usize_from_u32(r.u32()?);
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(r.u32()?);
        }
        Ok((next_group_id, ids))
    }

    /// The row-group ids the persisted manifest under `prefix` references,
    /// without loading any group (scrub/verify support).
    pub fn persisted_group_ids(store: &dyn BlobStore, prefix: &str) -> Result<Vec<RowGroupId>> {
        let manifest = store.get(&format!("{prefix}.manifest"))?;
        let (_, ids) = Self::parse_manifest(&manifest)?;
        Ok(ids.into_iter().map(RowGroupId).collect())
    }

    fn load_inner(
        store: &dyn BlobStore,
        prefix: &str,
        schema: Schema,
        mut quarantine: Option<&mut Vec<BlobQuarantine>>,
    ) -> Result<ColumnStore> {
        let manifest = store.get(&format!("{prefix}.manifest"))?;
        let (next_group_id, ids) = Self::parse_manifest(&manifest)?;
        let mut cs = ColumnStore::new(schema);
        cs.next_group_id = next_group_id;
        for gid in ids {
            let key = format!("{prefix}.rg{gid}");
            let loaded = store
                .get(&key)
                .and_then(|blob| CompressedRowGroup::deserialize(&blob, cs.schema.clone()));
            match (loaded, quarantine.as_deref_mut()) {
                (Ok(rg), _) => {
                    cs.adopt_global_dicts(&rg);
                    cs.groups.push(rg);
                }
                (Err(e), Some(q)) => q.push(BlobQuarantine {
                    key,
                    kind: QuarantinedKind::RowGroup(RowGroupId(gid)),
                    error: e.to_string(),
                }),
                (Err(e), None) => return Err(e),
            }
        }
        Ok(cs)
    }

    /// Fetch a single value (slow path).
    pub fn value_at(&self, id: RowGroupId, tuple: usize, col: usize) -> Result<Value> {
        let g = self
            .group_by_id(id)
            .ok_or_else(|| cstore_common::Error::Storage(format!("no row group {id}")))?;
        Ok(g.open_segment(col)?.value_at(tuple))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::MemBlobStore;
    use crate::pred::CmpOp;
    use cstore_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::not_null("cat", DataType::Utf8),
        ])
    }

    fn rows(lo: i64, hi: i64) -> Vec<Row> {
        (lo..hi)
            .map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("c{}", i % 3))]))
            .collect()
    }

    #[test]
    fn append_splits_into_groups() {
        let mut cs = ColumnStore::new(schema());
        let ids = cs.append_rows(&rows(0, 2500), 1000).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(cs.total_rows(), 2500);
        assert_eq!(cs.groups()[2].n_rows(), 500);
    }

    #[test]
    fn global_dictionary_shared_across_groups() {
        let mut cs = ColumnStore::new(schema());
        cs.append_rows(&rows(0, 1000), 500).unwrap();
        let d0 = cs.groups()[0].segment(1).dictionary().unwrap().clone();
        let d1 = cs.groups()[1].segment(1).dictionary().unwrap().clone();
        assert!(
            Arc::ptr_eq(&d0, &d1),
            "second group should reuse the global dict"
        );
    }

    #[test]
    fn compression_beats_raw() {
        let mut cs = ColumnStore::new(schema());
        cs.append_rows(&rows(0, 10_000), 5000).unwrap();
        let raw = cs.raw_bytes();
        let enc = cs.encoded_bytes();
        assert!(enc * 2 < raw, "encoded {enc} raw {raw}");
    }

    #[test]
    fn elimination_with_sorted_groups() {
        let mut cs = ColumnStore::new(schema()).with_sort_mode(SortMode::Columns(vec![0]));
        cs.append_rows(&rows(0, 3000), 1000).unwrap();
        let preds = vec![(
            0usize,
            ColumnPred::Cmp {
                op: CmpOp::Ge,
                value: Value::Int64(2500),
            },
        )];
        let surv = cs.surviving_groups(&preds);
        assert_eq!(surv, vec![RowGroupId(2)]);
        assert_eq!(cs.directory().surviving_groups(&preds), vec![RowGroupId(2)]);
    }

    #[test]
    fn persist_load_roundtrip() {
        let mut cs = ColumnStore::new(schema());
        cs.append_rows(&rows(0, 1500), 1000).unwrap();
        cs.archive_group(RowGroupId(1)).unwrap();
        let mut store = MemBlobStore::new();
        cs.persist(&mut store, "t1").unwrap();
        let loaded = ColumnStore::load(&store, "t1", schema()).unwrap();
        assert_eq!(loaded.total_rows(), 1500);
        assert_eq!(loaded.groups()[1].level(), CompressionLevel::Archive);
        assert_eq!(
            loaded.value_at(RowGroupId(0), 123, 0).unwrap(),
            cs.value_at(RowGroupId(0), 123, 0).unwrap()
        );
        // Id sequence continues after load.
        let mut loaded = loaded;
        assert_eq!(loaded.alloc_group_id(), RowGroupId(2));
    }

    #[test]
    fn load_degraded_quarantines_bad_groups() {
        let mut cs = ColumnStore::new(schema());
        cs.append_rows(&rows(0, 1500), 500).unwrap();
        let mut store = MemBlobStore::new();
        cs.persist(&mut store, "t").unwrap();
        // Corrupt rg1 (flip a byte past the header) and drop rg2 entirely.
        let mut blob = store.get("t.rg1").unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xff;
        store.put("t.rg1", &blob).unwrap();
        store.delete("t.rg2").unwrap();

        assert!(ColumnStore::load(&store, "t", schema()).is_err());
        let (mut loaded, quarantined) = ColumnStore::load_degraded(&store, "t", schema()).unwrap();
        assert_eq!(loaded.total_rows(), 500, "only rg0 survives");
        assert_eq!(quarantined.len(), 2);
        assert_eq!(
            quarantined[0].kind,
            QuarantinedKind::RowGroup(RowGroupId(1))
        );
        assert_eq!(
            quarantined[1].kind,
            QuarantinedKind::RowGroup(RowGroupId(2))
        );
        assert!(quarantined[1].error.contains("not found"));
        // Id sequence is preserved even with holes.
        assert_eq!(loaded.alloc_group_id(), RowGroupId(3));
    }

    #[test]
    fn remove_group_works() {
        let mut cs = ColumnStore::new(schema());
        cs.append_rows(&rows(0, 100), 50).unwrap();
        assert!(cs.remove_group(RowGroupId(0)).is_some());
        assert!(cs.remove_group(RowGroupId(0)).is_none());
        assert_eq!(cs.total_rows(), 50);
    }
}
