//! Archival compression: an LZ77/LZSS codec layered over encoded segments.
//!
//! SQL Server's `COLUMNSTORE_ARCHIVE` option runs a modified LZ77 (Xpress)
//! pass over each column segment after the columnar encodings, for cold
//! data that is rarely queried. This module is a from-scratch LZSS codec in
//! the same family: a 64 KiB sliding window, hash-chain match finder,
//! greedy parse, and a token stream of literal/match flags. The trade-off
//! it reproduces is the paper's: a further size reduction at the cost of
//! decompression CPU on every access (archived segments are *not* cached
//! decompressed).
//!
//! Stream format: groups of 8 tokens, each group led by a flag byte
//! (bit i set → token i is a match). A literal is 1 raw byte. A match is
//! 3 bytes: 16-bit little-endian distance (1-based) and a length byte
//! encoding `len - MIN_MATCH`.

use cstore_common::{Error, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let w = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (w.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a fresh buffer.
///
/// Output always begins with the 4-byte original length, so decompression
/// can preallocate exactly.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    out.extend_from_slice(&(n as u32).to_le_bytes());

    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut prev = vec![u32::MAX; n.max(1)];

    let mut i = 0;
    // Token group state: position of the current flag byte in `out`.
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8u8;

    macro_rules! begin_token {
        () => {
            if flag_bit == 8 {
                flag_pos = out.len();
                out.push(0);
                flag_bit = 0;
            }
        };
    }

    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(input, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != u32::MAX && chain < 64 {
                let c = cand as usize;
                if i - c > WINDOW - 1 {
                    break;
                }
                // Quick reject on the byte past the current best.
                if best_len == 0 || input.get(c + best_len) == input.get(i + best_len) {
                    let max_len = (n - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < max_len && input[c + l] == input[i + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH && l > best_len {
                        best_len = l;
                        best_dist = i - c;
                        if l == MAX_MATCH {
                            break;
                        }
                    }
                }
                cand = prev[c];
                chain += 1;
            }
        }

        begin_token!();
        if best_len >= MIN_MATCH {
            out[flag_pos] |= 1 << flag_bit;
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for every position the match covers so
            // later matches can reference them.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= n {
                    let h = hash4(input, i);
                    prev[i] = head[h];
                    head[h] = i as u32;
                }
                i += 1;
            }
        } else {
            out.push(input[i]);
            if i + MIN_MATCH <= n {
                let h = hash4(input, i);
                prev[i] = head[h];
                head[h] = i as u32;
            }
            i += 1;
        }
        flag_bit += 1;
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 4 {
        return Err(Error::Storage("archival stream too short".into()));
    }
    let mut n_bytes = [0u8; 4];
    n_bytes.copy_from_slice(&data[..4]);
    let n = u32::from_le_bytes(n_bytes) as usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 4;
    let mut flags = 0u8;
    let mut flag_bit = 8u8;
    let err = || Error::Storage("archival stream truncated".into());
    while out.len() < n {
        if flag_bit == 8 {
            flags = *data.get(i).ok_or_else(err)?;
            i += 1;
            flag_bit = 0;
        }
        if flags >> flag_bit & 1 == 1 {
            if i + 3 > data.len() {
                return Err(err());
            }
            let dist = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
            let len = data[i + 2] as usize + MIN_MATCH;
            i += 3;
            if dist == 0 || dist > out.len() {
                return Err(Error::Storage(format!(
                    "archival stream corrupt: distance {dist} at output {}",
                    out.len()
                )));
            }
            // Overlapping copies are the normal case (e.g. RLE-like bytes);
            // copy byte-by-byte.
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            out.push(*data.get(i).ok_or_else(err)?);
            i += 1;
        }
        flag_bit += 1;
    }
    if out.len() != n {
        return Err(Error::Storage("archival stream length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"abcabcabc".iter().cycle().take(10_000).copied().collect();
        let clen = roundtrip(&data);
        assert!(clen < 500, "repetitive data compressed to {clen} bytes");
    }

    #[test]
    fn constant_run_compresses_well() {
        let data = vec![7u8; 100_000];
        let clen = roundtrip(&data);
        // Max match length is 259 bytes, so ~386 matches * 3 bytes + flags.
        assert!(clen < 2000, "constant data compressed to {clen} bytes");
    }

    #[test]
    fn random_data_roundtrips() {
        // Pseudo-random bytes: incompressible but must roundtrip.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let clen = roundtrip(&data);
        // Flag bytes add at most 1/8 overhead plus header.
        assert!(clen <= data.len() + data.len() / 8 + 8);
    }

    #[test]
    fn text_like_data() {
        let text = "the quick brown fox jumps over the lazy dog. "
            .repeat(500)
            .into_bytes();
        let clen = roundtrip(&text);
        assert!(
            clen < text.len() / 4,
            "text compressed to {clen}/{}",
            text.len()
        );
    }

    #[test]
    fn long_range_matches_respect_window() {
        // Two identical blocks separated by > WINDOW of noise: must still
        // roundtrip (the second block simply won't match the first).
        let mut data = vec![1u8; 1000];
        let mut x: u32 = 12345;
        for _ in 0..(WINDOW + 100) {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        data.extend(vec![1u8; 1000]);
        roundtrip(&data);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let c = compress(b"hello world hello world hello world");
        assert!(decompress(&c[..2]).is_err());
        let mut truncated = c.clone();
        truncated.truncate(c.len() - 1);
        assert!(decompress(&truncated).is_err());
        // Claim a longer output than the stream provides.
        let mut bad_len = c.clone();
        bad_len[0] = 0xFF;
        bad_len[1] = 0xFF;
        assert!(decompress(&bad_len).is_err());
    }
}
