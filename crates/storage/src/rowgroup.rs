//! Compressed row groups.
//!
//! A row group holds up to ~1M rows, one [`ColumnSegment`] per column.
//! Row groups come in two compression levels, matching SQL Server's
//! `COLUMNSTORE` and `COLUMNSTORE_ARCHIVE`:
//!
//! * **Hot** — segments live decoded-on-demand in their columnar encoding;
//! * **Archived** — each segment's serialized bytes are additionally
//!   LZSS-compressed; metadata stays available (so segment elimination
//!   still works without touching payload bytes), but any access to the
//!   data pays a decompression step.

use std::sync::Arc;

use cstore_common::convert;
use cstore_common::{DataType, Result, RowGroupId, Schema, Value};

use crate::archive;
use crate::format;
use crate::pred::ColumnPred;
use crate::segment::{ColumnSegment, SegmentMeta};

/// Compression level of a row group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressionLevel {
    /// Standard columnar compression (`COLUMNSTORE`).
    Columnstore,
    /// Columnar compression + LZSS (`COLUMNSTORE_ARCHIVE`).
    Archive,
}

/// Storage of one column within a row group.
#[derive(Clone, Debug)]
enum SegmentStore {
    Hot(Arc<ColumnSegment>),
    Archived {
        meta: SegmentMeta,
        /// LZSS-compressed serialized segment.
        bytes: Arc<[u8]>,
    },
}

/// A fully encoded row group.
#[derive(Clone, Debug)]
pub struct CompressedRowGroup {
    id: RowGroupId,
    schema: Schema,
    n_rows: usize,
    columns: Vec<SegmentStore>,
}

impl CompressedRowGroup {
    pub fn new(id: RowGroupId, schema: Schema, segments: Vec<ColumnSegment>) -> Self {
        assert_eq!(
            schema.len(),
            segments.len(),
            "segment count != column count"
        );
        let n_rows = segments.first().map_or(0, |s| s.row_count());
        assert!(
            segments.iter().all(|s| s.row_count() == n_rows),
            "ragged segments"
        );
        CompressedRowGroup {
            id,
            schema,
            n_rows,
            columns: segments
                .into_iter()
                .map(|s| SegmentStore::Hot(Arc::new(s)))
                .collect(),
        }
    }

    pub fn id(&self) -> RowGroupId {
        self.id
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn level(&self) -> CompressionLevel {
        if self
            .columns
            .iter()
            .any(|c| matches!(c, SegmentStore::Archived { .. }))
        {
            CompressionLevel::Archive
        } else {
            CompressionLevel::Columnstore
        }
    }

    /// Segment metadata for column `col` — always available without
    /// decompression (this is what segment elimination reads).
    pub fn seg_meta(&self, col: usize) -> &SegmentMeta {
        match &self.columns[col] {
            SegmentStore::Hot(s) => &s.meta,
            SegmentStore::Archived { meta, .. } => meta,
        }
    }

    /// Open column `col` for reading. Hot segments are returned by
    /// reference-count bump; archived segments are decompressed and
    /// deserialized on every call (deliberately uncached — that CPU cost is
    /// the archival trade-off the paper measures).
    pub fn open_segment(&self, col: usize) -> Result<Arc<ColumnSegment>> {
        match &self.columns[col] {
            SegmentStore::Hot(s) => Ok(s.clone()),
            SegmentStore::Archived { bytes, .. } => {
                let raw = archive::decompress(bytes)?;
                Ok(Arc::new(format::deserialize_segment(&raw)?))
            }
        }
    }

    /// Direct access to a hot segment (test/introspection convenience;
    /// panics on archived segments).
    pub fn segment(&self, col: usize) -> &ColumnSegment {
        match &self.columns[col] {
            SegmentStore::Hot(s) => s,
            SegmentStore::Archived { .. } => {
                // lint: allow(panic) — documented panicking accessor for
                // tests/introspection; engine code uses open_segment
                panic!("segment({col}) on an archived row group; use open_segment")
            }
        }
    }

    /// Total encoded bytes of this row group (archived columns report their
    /// compressed size).
    pub fn encoded_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                SegmentStore::Hot(s) => s.encoded_bytes(),
                SegmentStore::Archived { bytes, .. } => bytes.len(),
            })
            .sum()
    }

    /// Convert every segment to archival compression. Idempotent.
    pub fn archive(&mut self) -> Result<()> {
        for c in self.columns.iter_mut() {
            if let SegmentStore::Hot(s) = c {
                let serialized = format::serialize_segment(s)?;
                let compressed = archive::compress(&serialized);
                *c = SegmentStore::Archived {
                    meta: s.meta.clone(),
                    bytes: compressed.into(),
                };
            }
        }
        Ok(())
    }

    /// Restore archived segments to hot form.
    pub fn unarchive(&mut self) -> Result<()> {
        for c in self.columns.iter_mut() {
            if let SegmentStore::Archived { bytes, .. } = c {
                let raw = archive::decompress(bytes)?;
                let seg = format::deserialize_segment(&raw)?;
                *c = SegmentStore::Hot(Arc::new(seg));
            }
        }
        Ok(())
    }

    /// May any row in this group match all of `preds` (pairs of column
    /// index and predicate)? `false` ⇒ the whole row group is skipped.
    pub fn may_match(&self, preds: &[(usize, ColumnPred)]) -> bool {
        preds.iter().all(|(col, p)| {
            let m = self.seg_meta(*col);
            p.may_match(m.min.as_ref(), m.max.as_ref(), m.null_count as usize)
        })
    }

    /// Fetch a single row (slow path: delete-checking, tests, lookups).
    pub fn row_values(&self, tuple: usize) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(self.columns.len());
        for col in 0..self.columns.len() {
            out.push(self.open_segment(col)?.value_at(tuple));
        }
        Ok(out)
    }

    /// The column's logical type.
    pub fn column_type(&self, col: usize) -> DataType {
        self.schema.field(col).data_type
    }

    /// Serialize the whole row group (header + per-column segment blobs,
    /// preserving the compression level).
    pub fn serialize(&self) -> Result<Vec<u8>> {
        let mut w = format::Writer::new();
        w.u32(0x4752_5343); // "CSRG"
        w.u16(format::FORMAT_VERSION);
        w.u32(self.id.0);
        w.u32(convert::u32_from_usize(self.n_rows)?);
        w.u16(convert::u16_from_usize(self.columns.len())?);
        for c in &self.columns {
            match c {
                SegmentStore::Hot(s) => {
                    w.u8(0);
                    w.lp_bytes(&format::serialize_segment(s)?)?;
                }
                SegmentStore::Archived { bytes, .. } => {
                    w.u8(1);
                    w.lp_bytes(bytes)?;
                }
            }
        }
        Ok(w.seal())
    }

    /// Deserialize a row group blob (schema comes from the table catalog).
    pub fn deserialize(data: &[u8], schema: Schema) -> Result<CompressedRowGroup> {
        let payload = format::Reader::check_crc(data)?;
        let mut r = format::Reader::new(payload);
        if r.u32()? != 0x4752_5343 {
            return Err(cstore_common::Error::Storage("bad row group magic".into()));
        }
        let version = r.u16()?;
        if version != format::FORMAT_VERSION {
            return Err(cstore_common::Error::Storage(format!(
                "unsupported row group format version {version}"
            )));
        }
        let id = RowGroupId(r.u32()?);
        let n_rows = convert::usize_from_u32(r.u32()?);
        let n_cols = usize::from(r.u16()?);
        if n_cols != schema.len() {
            return Err(cstore_common::Error::Storage(format!(
                "row group has {n_cols} columns, schema has {}",
                schema.len()
            )));
        }
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let archived = r.u8()? == 1;
            let blob = r.lp_bytes()?;
            if archived {
                // Deserialize once to recover metadata, keep compressed bytes.
                let raw = archive::decompress(blob)?;
                let seg = format::deserialize_segment(&raw)?;
                columns.push(SegmentStore::Archived {
                    meta: seg.meta,
                    bytes: blob.to_vec().into(),
                });
            } else {
                let seg = format::deserialize_segment(blob)?;
                columns.push(SegmentStore::Hot(Arc::new(seg)));
            }
        }
        Ok(CompressedRowGroup {
            id,
            schema,
            n_rows,
            columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{RowGroupBuilder, SortMode};
    use crate::pred::CmpOp;
    use cstore_common::{Field, Row};

    fn sample_group() -> CompressedRowGroup {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
        ]);
        let mut b = RowGroupBuilder::new(schema, SortMode::None);
        for i in 0..1000i64 {
            let name = if i % 10 == 0 {
                Value::Null
            } else {
                Value::str(format!("n{}", i % 4))
            };
            b.push_row(&Row::new(vec![Value::Int64(i), name])).unwrap();
        }
        b.finish(RowGroupId(3), &[None, None]).unwrap()
    }

    #[test]
    fn basic_access() {
        let rg = sample_group();
        assert_eq!(rg.n_rows(), 1000);
        assert_eq!(rg.id(), RowGroupId(3));
        assert_eq!(rg.level(), CompressionLevel::Columnstore);
        assert_eq!(rg.row_values(5).unwrap()[0], Value::Int64(5));
    }

    #[test]
    fn archive_roundtrip_preserves_data() {
        let mut rg = sample_group();
        let hot_bytes = rg.encoded_bytes();
        let before: Vec<Vec<Value>> = (0..10).map(|i| rg.row_values(i * 97).unwrap()).collect();
        rg.archive().unwrap();
        assert_eq!(rg.level(), CompressionLevel::Archive);
        // Metadata still there without decompression.
        assert_eq!(rg.seg_meta(0).min, Some(Value::Int64(0)));
        let after: Vec<Vec<Value>> = (0..10).map(|i| rg.row_values(i * 97).unwrap()).collect();
        assert_eq!(before, after);
        // Archival should not *grow* storage on this compressible data.
        assert!(rg.encoded_bytes() <= hot_bytes + 64);
        rg.unarchive().unwrap();
        assert_eq!(rg.level(), CompressionLevel::Columnstore);
        let restored: Vec<Vec<Value>> = (0..10).map(|i| rg.row_values(i * 97).unwrap()).collect();
        assert_eq!(before, restored);
    }

    #[test]
    fn may_match_eliminates() {
        let rg = sample_group();
        let gt = |v: i64| {
            (
                0usize,
                ColumnPred::Cmp {
                    op: CmpOp::Gt,
                    value: Value::Int64(v),
                },
            )
        };
        assert!(rg.may_match(&[gt(500)]));
        assert!(!rg.may_match(&[gt(999)]));
        assert!(!rg.may_match(&[gt(500), gt(2000)]));
    }

    #[test]
    fn serialize_roundtrip_hot_and_archived() {
        let rg = sample_group();
        let blob = rg.serialize().unwrap();
        let back = CompressedRowGroup::deserialize(&blob, rg.schema().clone()).unwrap();
        assert_eq!(back.n_rows(), rg.n_rows());
        assert_eq!(back.row_values(123).unwrap(), rg.row_values(123).unwrap());

        let mut arch = sample_group();
        arch.archive().unwrap();
        let blob = arch.serialize().unwrap();
        let back = CompressedRowGroup::deserialize(&blob, arch.schema().clone()).unwrap();
        assert_eq!(back.level(), CompressionLevel::Archive);
        assert_eq!(back.row_values(7).unwrap(), arch.row_values(7).unwrap());
    }

    #[test]
    fn deserialize_rejects_schema_mismatch() {
        let rg = sample_group();
        let blob = rg.serialize().unwrap();
        let wrong = Schema::new(vec![Field::not_null("only", DataType::Int64)]);
        assert!(CompressedRowGroup::deserialize(&blob, wrong).is_err());
    }
}
