//! Segment directory: table-level view of per-segment statistics.
//!
//! SQL Server keeps a *segment directory* with each segment's min/max and
//! row counts so the scan can decide which row groups to read before
//! touching any data. This module materializes that directory from a set
//! of row groups and answers elimination queries against it.

use cstore_common::{RowGroupId, Value};

use crate::pred::ColumnPred;
use crate::rowgroup::CompressedRowGroup;

/// Directory entry for one column of one row group.
#[derive(Clone, Debug)]
pub struct SegmentEntry {
    pub group: RowGroupId,
    pub column: usize,
    pub row_count: u32,
    pub null_count: u32,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub encoded_bytes: u64,
}

/// The directory of all segments of one table.
#[derive(Clone, Debug, Default)]
pub struct SegmentDirectory {
    entries: Vec<SegmentEntry>,
    n_columns: usize,
}

impl SegmentDirectory {
    pub fn build(groups: &[CompressedRowGroup]) -> Self {
        let n_columns = groups.first().map_or(0, |g| g.n_columns());
        let mut entries = Vec::with_capacity(groups.len() * n_columns);
        for g in groups {
            for col in 0..g.n_columns() {
                let m = g.seg_meta(col);
                entries.push(SegmentEntry {
                    group: g.id(),
                    column: col,
                    row_count: m.row_count,
                    null_count: m.null_count,
                    min: m.min.clone(),
                    max: m.max.clone(),
                    encoded_bytes: m.payload_bytes + m.dict_bytes,
                });
            }
        }
        SegmentDirectory { entries, n_columns }
    }

    pub fn entries(&self) -> &[SegmentEntry] {
        &self.entries
    }

    /// Row-group ids whose segments *may* satisfy all `preds`
    /// (column index, predicate). Groups absent from the directory are
    /// never returned.
    pub fn surviving_groups(&self, preds: &[(usize, ColumnPred)]) -> Vec<RowGroupId> {
        let mut out = Vec::new();
        for chunk in self.entries.chunks(self.n_columns.max(1)) {
            let Some(first) = chunk.first() else { continue };
            // A predicate on a column the directory has no entry for must
            // be conservative: without statistics we cannot prove the group
            // empty, so keep it (the scan re-checks the predicate anyway).
            let ok = preds.iter().all(|(col, p)| {
                chunk.iter().find(|e| e.column == *col).map_or(true, |e| {
                    p.may_match(e.min.as_ref(), e.max.as_ref(), e.null_count as usize)
                })
            });
            if ok {
                out.push(first.group);
            }
        }
        out
    }

    /// Number of row groups in the directory.
    pub fn n_groups(&self) -> usize {
        self.entries.len().checked_div(self.n_columns).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{RowGroupBuilder, SortMode};
    use crate::pred::CmpOp;
    use cstore_common::{DataType, Field, Row, Schema};

    fn group(id: u32, lo: i64, hi: i64) -> CompressedRowGroup {
        let schema = Schema::new(vec![Field::not_null("v", DataType::Int64)]);
        let mut b = RowGroupBuilder::new(schema, SortMode::None);
        for v in lo..hi {
            b.push_row(&Row::new(vec![Value::Int64(v)])).unwrap();
        }
        b.finish(RowGroupId(id), &[None]).unwrap()
    }

    #[test]
    fn directory_eliminates_disjoint_groups() {
        let groups = vec![group(0, 0, 100), group(1, 100, 200), group(2, 200, 300)];
        let dir = SegmentDirectory::build(&groups);
        assert_eq!(dir.n_groups(), 3);
        let preds = vec![(
            0usize,
            ColumnPred::Between {
                lo: Value::Int64(150),
                hi: Value::Int64(160),
            },
        )];
        assert_eq!(dir.surviving_groups(&preds), vec![RowGroupId(1)]);
        // No predicates: everything survives.
        assert_eq!(dir.surviving_groups(&[]).len(), 3);
    }

    #[test]
    fn missing_column_is_conservative() {
        let groups = vec![group(0, 0, 100), group(1, 100, 200)];
        let dir = SegmentDirectory::build(&groups);
        // Column 5 has no directory entries (the schema has one column);
        // without stats the groups must survive, not silently vanish.
        let preds = vec![(
            5usize,
            ColumnPred::Cmp {
                op: CmpOp::Eq,
                value: Value::Int64(1),
            },
        )];
        assert_eq!(
            dir.surviving_groups(&preds),
            vec![RowGroupId(0), RowGroupId(1)]
        );
        // A real predicate alongside the stats-less one still eliminates.
        let mixed = vec![
            (
                0usize,
                ColumnPred::Cmp {
                    op: CmpOp::Ge,
                    value: Value::Int64(150),
                },
            ),
            preds[0].clone(),
        ];
        assert_eq!(dir.surviving_groups(&mixed), vec![RowGroupId(1)]);
    }

    #[test]
    fn empty_between_eliminates_all_groups() {
        let groups = vec![group(0, 0, 100), group(1, 100, 200)];
        let dir = SegmentDirectory::build(&groups);
        let preds = vec![(
            0usize,
            ColumnPred::Between {
                lo: Value::Int64(50),
                hi: Value::Int64(10),
            },
        )];
        assert!(dir.surviving_groups(&preds).is_empty());
    }

    #[test]
    fn directory_handles_boundary_overlap() {
        let groups = vec![group(0, 0, 101), group(1, 100, 200)];
        let dir = SegmentDirectory::build(&groups);
        let preds = vec![(
            0usize,
            ColumnPred::Cmp {
                op: CmpOp::Eq,
                value: Value::Int64(100),
            },
        )];
        assert_eq!(
            dir.surviving_groups(&preds),
            vec![RowGroupId(0), RowGroupId(1)]
        );
    }
}
