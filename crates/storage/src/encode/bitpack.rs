//! Fixed-width bit packing of unsigned codes.
//!
//! Codes in `0..2^width` are stored `width` bits each, packed little-endian
//! into `u64` words. `width == 0` is the degenerate constant-zero sequence
//! and stores no payload at all.

use super::bits_needed;
use cstore_common::convert::usize_from_u32;

/// A sequence of `u64` codes packed at a fixed bit width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedInts {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl PackedInts {
    /// Pack `codes` at the minimum width that fits their maximum.
    pub fn from_codes(codes: &[u64]) -> Self {
        let width = bits_needed(codes.iter().copied().max().unwrap_or(0));
        Self::from_codes_with_width(codes, width)
    }

    /// Pack `codes` at an explicit width (each code must fit).
    pub fn from_codes_with_width(codes: &[u64], width: u32) -> Self {
        assert!(width <= 64);
        let w_bits = usize_from_u32(width);
        let total_bits = codes.len() * w_bits;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        if width > 0 {
            let mask = Self::mask(width);
            for (i, &c) in codes.iter().enumerate() {
                debug_assert!(c <= mask, "code {c} exceeds width {width}");
                let bit = i * w_bits;
                let (w, off) = (bit >> 6, bit & 63);
                words[w] |= c << off;
                // A code may straddle a word boundary.
                if off + w_bits > 64 {
                    words[w + 1] |= c >> (64 - off);
                }
            }
        }
        PackedInts {
            words,
            width,
            len: codes.len(),
        }
    }

    #[inline]
    fn mask(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    /// Random access to one code.
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        debug_assert!(idx < self.len);
        if self.width == 0 {
            return 0;
        }
        let w_bits = usize_from_u32(self.width);
        let bit = idx * w_bits;
        let (w, off) = (bit >> 6, bit & 63);
        let mut v = self.words[w] >> off;
        if off + w_bits > 64 {
            v |= self.words[w + 1] << (64 - off);
        }
        v & Self::mask(self.width)
    }

    /// Decode every code into `out` (appended).
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len);
        if self.width == 0 {
            out.extend(std::iter::repeat_n(0, self.len));
            return;
        }
        // Straight-line per-element decode; get() is branch-light and the
        // compiler unrolls it well at fixed widths.
        for i in 0..self.len {
            out.push(self.get(i));
        }
    }

    /// Payload size in bytes (words only, excluding struct overhead).
    pub fn payload_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Exact byte size this packing would take for `n` codes at `width` bits
    /// — used by the encoder to pick RLE vs bit packing without building
    /// both.
    pub fn estimate_bytes(n: usize, width: u32) -> usize {
        (n * usize_from_u32(width)).div_ceil(64) * 8
    }

    /// Raw words for serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from serialized parts.
    pub fn from_raw(words: Vec<u64>, width: u32, len: usize) -> Self {
        assert!(width <= 64);
        assert_eq!(words.len(), (len * usize_from_u32(width)).div_ceil(64));
        PackedInts { words, width, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codes: &[u64]) {
        let p = PackedInts::from_codes(codes);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(p.get(i), c, "get({i})");
        }
    }

    #[test]
    fn roundtrip_small_widths() {
        roundtrip(&[0, 1, 0, 1, 1, 0]);
        roundtrip(&[3, 1, 2, 0, 3, 3, 1]);
        roundtrip(&(0..100).collect::<Vec<_>>());
    }

    #[test]
    fn roundtrip_zero_width() {
        let p = PackedInts::from_codes(&[0; 17]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.payload_bytes(), 0);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, vec![0; 17]);
    }

    #[test]
    fn roundtrip_straddling_words() {
        // width 7 → codes straddle u64 boundaries regularly.
        let codes: Vec<u64> = (0..200).map(|i| (i * 37) % 128).collect();
        roundtrip(&codes);
    }

    #[test]
    fn roundtrip_width_64() {
        roundtrip(&[u64::MAX, 0, 1, u64::MAX - 1, 42]);
    }

    #[test]
    fn roundtrip_width_33() {
        let codes: Vec<u64> = (0..50).map(|i| (1u64 << 32) + i).collect();
        roundtrip(&codes);
    }

    #[test]
    fn estimate_matches_actual() {
        for width in [0u32, 1, 3, 8, 13, 33, 64] {
            for n in [0usize, 1, 7, 64, 100] {
                let codes: Vec<u64> = (0..n as u64)
                    .map(|i| {
                        if width == 0 {
                            0
                        } else {
                            i % (1u64 << (width.min(63)))
                        }
                    })
                    .collect();
                let p = PackedInts::from_codes_with_width(&codes, width);
                assert_eq!(p.payload_bytes(), PackedInts::estimate_bytes(n, width));
            }
        }
    }

    #[test]
    fn raw_roundtrip() {
        let codes: Vec<u64> = (0..77).map(|i| i * 3).collect();
        let p = PackedInts::from_codes(&codes);
        let q = PackedInts::from_raw(p.words().to_vec(), p.width(), p.len());
        assert_eq!(p, q);
    }
}
