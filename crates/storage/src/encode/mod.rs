//! Column encodings.
//!
//! Encoding happens in two stages, exactly as in SQL Server's column store:
//!
//! 1. A **primary encoding** maps each value to an unsigned integer *code*:
//!    [`dictionary`] encoding (value → index into a sorted dictionary) or
//!    [`value_encoding`] (integer → `(raw - base) / divisor`).
//! 2. The code sequence is compressed with [`rle`] (run-length encoding) or
//!    [`bitpack`] (fixed-width bit packing), whichever yields fewer bytes.

pub mod bitpack;
pub mod dictionary;
pub mod rle;
pub mod value_encoding;

pub use bitpack::PackedInts;
pub use dictionary::Dictionary;
pub use rle::RleVec;
pub use value_encoding::ValueEncoding;

/// How a segment's codes are physically compressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// Run-length encoded (values + run lengths).
    Rle,
    /// Fixed-width bit-packed.
    BitPacked,
}

/// How values are mapped to codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrimaryEncoding {
    /// `code = (raw_i64 - base) / divisor` — for integer-backed types.
    ValueBased,
    /// `code = index into a sorted dictionary` — strings, floats, and
    /// integers whose cardinality makes a dictionary smaller.
    Dictionary,
}

/// Number of bits needed to represent `max_code` (0 for a constant-zero
/// sequence, which bit-packs to nothing).
#[inline]
pub fn bits_needed(max_code: u64) -> u32 {
    64 - max_code.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }
}
