//! Value-based encoding of integer data.
//!
//! `code = (raw - base) / divisor`. The base shifts the smallest value to
//! code 0; the divisor strips a common factor (SQL Server applies exponent
//! rescaling to decimals the same way — our decimals are scaled-integer
//! mantissas, so a power-of-ten divisor falls out of the same GCD). Both
//! transformations shrink the code domain and therefore the packed width.

use std::ops::Bound;

/// Parameters of a value-based encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueEncoding {
    /// Raw value encoded as code 0.
    pub base: i64,
    /// Common factor divided out of `(raw - base)`; always >= 1.
    /// Unsigned because offsets span the full `u64` range when a column
    /// covers most of `i64` (e.g. contains both `i64::MIN` and `i64::MAX`).
    pub divisor: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl ValueEncoding {
    /// Analyze non-null raw values and derive `(base, divisor)`.
    /// Returns the encoding plus the maximum code it produces.
    pub fn analyze(values: &[i64]) -> (ValueEncoding, u64) {
        let Some(&first) = values.first() else {
            return (
                ValueEncoding {
                    base: 0,
                    divisor: 1,
                },
                0,
            );
        };
        let mut min = first;
        let mut max = first;
        for &v in &values[1..] {
            min = min.min(v);
            max = max.max(v);
        }
        // GCD of offsets from base.
        let mut g: u64 = 0;
        for &v in values {
            // lint: allow(cast) — v >= min, so the i128 difference of two
            // i64s is in 0..=u64::MAX and converts exactly
            g = gcd(g, (i128::from(v) - i128::from(min)) as u64);
            if g == 1 {
                break;
            }
        }
        let divisor = g.max(1);
        let enc = ValueEncoding { base: min, divisor };
        let max_code = enc.encode(max);
        (enc, max_code)
    }

    /// Encode a raw value that is known to be in this encoding's domain.
    #[inline]
    pub fn encode(&self, raw: i64) -> u64 {
        debug_assert!(raw >= self.base);
        // lint: allow(cast) — raw >= base, so the i128 difference is in
        // 0..=u64::MAX and converts exactly
        ((i128::from(raw) - i128::from(self.base)) as u64) / self.divisor
    }

    /// Decode a code back to its raw value.
    #[inline]
    pub fn decode(&self, code: u64) -> i64 {
        // lint: allow(cast) — codes come from encode(), whose result times
        // divisor plus base is a valid i64 by construction
        (i128::from(self.base) + i128::from(code) * i128::from(self.divisor)) as i64
    }

    /// The inclusive code interval matching a raw-value interval, or `None`
    /// when nothing can match. `max_code` bounds the segment's code domain.
    pub fn code_range(&self, lo: Bound<i64>, hi: Bound<i64>, max_code: u64) -> Option<(u64, u64)> {
        let d = i128::from(self.divisor);
        let b = i128::from(self.base);
        // Smallest code whose raw value satisfies the lower bound.
        let lo_code: i128 = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => {
                (i128::from(v) - b).div_euclid(d)
                    + i128::from((i128::from(v) - b).rem_euclid(d) != 0)
            }
            Bound::Excluded(v) => (i128::from(v) - b).div_euclid(d) + 1,
        };
        // Largest code whose raw value satisfies the upper bound.
        let hi_code: i128 = match hi {
            Bound::Unbounded => i128::from(max_code),
            Bound::Included(v) => (i128::from(v) - b).div_euclid(d),
            Bound::Excluded(v) => {
                let q = (i128::from(v) - b).div_euclid(d);
                if (i128::from(v) - b).rem_euclid(d) == 0 {
                    q - 1
                } else {
                    q
                }
            }
        };
        let lo_code = lo_code.max(0);
        let hi_code = hi_code.min(i128::from(max_code));
        // lint: allow(cast) — both clamped into 0..=max_code, a u64 range
        (lo_code <= hi_code).then_some((lo_code as u64, hi_code as u64))
    }

    /// The exact code for raw value `v`, or `None` if `v` is not
    /// representable (off-grid or out of range). For equality predicates.
    pub fn exact_code(&self, v: i64, max_code: u64) -> Option<u64> {
        let off = i128::from(v) - i128::from(self.base);
        if off < 0 || off % i128::from(self.divisor) != 0 {
            return None;
        }
        // lint: allow(cast) — off >= 0 and off/divisor <= max_code is
        // checked below before the value escapes
        let code = u64::try_from(off / i128::from(self.divisor)).unwrap_or(u64::MAX);
        (code <= max_code).then_some(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_finds_base_and_gcd() {
        let (e, max) = ValueEncoding::analyze(&[100, 130, 160, 190]);
        assert_eq!(e.base, 100);
        assert_eq!(e.divisor, 30);
        assert_eq!(max, 3);
        for v in [100, 130, 160, 190] {
            assert_eq!(e.decode(e.encode(v)), v);
        }
    }

    #[test]
    fn analyze_handles_negatives() {
        let (e, max) = ValueEncoding::analyze(&[-50, 0, 50]);
        assert_eq!(e.base, -50);
        assert_eq!(e.divisor, 50);
        assert_eq!(max, 2);
        assert_eq!(e.decode(0), -50);
        assert_eq!(e.decode(2), 50);
    }

    #[test]
    fn analyze_constant_column() {
        let (e, max) = ValueEncoding::analyze(&[7, 7, 7]);
        assert_eq!(max, 0);
        assert_eq!(e.decode(0), 7);
    }

    #[test]
    fn analyze_extreme_span() {
        let (e, max) = ValueEncoding::analyze(&[i64::MIN, i64::MAX]);
        assert_eq!(e.base, i64::MIN);
        assert_eq!(e.decode(0), i64::MIN);
        assert_eq!(e.decode(max), i64::MAX);
    }

    #[test]
    fn code_range_on_grid() {
        let (e, max) = ValueEncoding::analyze(&[0, 10, 20, 30]);
        // raw in [10, 20] → codes [1, 2]
        assert_eq!(
            e.code_range(Bound::Included(10), Bound::Included(20), max),
            Some((1, 2))
        );
        // raw > 10 and < 30 → codes [2, 2]
        assert_eq!(
            e.code_range(Bound::Excluded(10), Bound::Excluded(30), max),
            Some((2, 2))
        );
    }

    #[test]
    fn code_range_off_grid() {
        let (e, max) = ValueEncoding::analyze(&[0, 10, 20, 30]);
        // raw >= 11 → codes [2, 3]
        assert_eq!(
            e.code_range(Bound::Included(11), Bound::Unbounded, max),
            Some((2, 3))
        );
        // raw <= 9 → codes [0, 0]
        assert_eq!(
            e.code_range(Bound::Unbounded, Bound::Included(9), max),
            Some((0, 0))
        );
        // raw in [31, 40] → nothing
        assert_eq!(
            e.code_range(Bound::Included(31), Bound::Included(40), max),
            None
        );
        // raw <= -1 → nothing
        assert_eq!(
            e.code_range(Bound::Unbounded, Bound::Included(-1), max),
            None
        );
    }

    #[test]
    fn exact_code() {
        let (e, max) = ValueEncoding::analyze(&[0, 10, 20, 30]);
        assert_eq!(e.exact_code(20, max), Some(2));
        assert_eq!(e.exact_code(15, max), None);
        assert_eq!(e.exact_code(40, max), None);
        assert_eq!(e.exact_code(-10, max), None);
    }
}
