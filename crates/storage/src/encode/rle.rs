//! Run-length encoding of code sequences.
//!
//! Runs are stored as parallel arrays of run values and cumulative *run
//! ends*; the cumulative form gives O(log r) random access by binary search
//! and O(1) run iteration for scans.

use cstore_common::convert::usize_from_u32;

/// A run-length-encoded sequence of `u64` codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RleVec {
    /// Code of each run.
    values: Vec<u64>,
    /// Exclusive cumulative end index of each run; last element == len.
    run_ends: Vec<u32>,
}

impl RleVec {
    /// Encode `codes` (empty input produces an empty RleVec).
    pub fn from_codes(codes: &[u64]) -> Self {
        let mut values = Vec::new();
        let mut run_ends = Vec::new();
        let mut i = 0;
        while i < codes.len() {
            let v = codes[i];
            let mut j = i + 1;
            while j < codes.len() && codes[j] == v {
                j += 1;
            }
            values.push(v);
            // Row groups cap out far below u32::MAX rows, so cumulative
            // run ends always fit; saturate rather than truncate if a
            // caller ever violates that.
            run_ends.push(u32::try_from(j).unwrap_or(u32::MAX));
            i = j;
        }
        RleVec { values, run_ends }
    }

    /// Number of logical elements.
    pub fn len(&self) -> usize {
        self.run_ends.last().map_or(0, |&e| usize_from_u32(e))
    }

    pub fn is_empty(&self) -> bool {
        self.run_ends.is_empty()
    }

    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.values.len()
    }

    /// Random access to one code (O(log runs)).
    pub fn get(&self, idx: usize) -> u64 {
        debug_assert!(idx < self.len());
        let run = self.run_ends.partition_point(|&e| usize_from_u32(e) <= idx);
        self.values[run]
    }

    /// Iterate `(code, start, end)` triples over all runs.
    pub fn iter_runs(&self) -> impl Iterator<Item = (u64, usize, usize)> + '_ {
        self.values
            .iter()
            .zip(self.run_ends.iter())
            .scan(0usize, |start, (&v, &end)| {
                let s = *start;
                *start = usize_from_u32(end);
                Some((v, s, usize_from_u32(end)))
            })
    }

    /// Decode every code into `out` (appended).
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len());
        for (v, s, e) in self.iter_runs() {
            out.extend(std::iter::repeat_n(v, e - s));
        }
    }

    /// Payload size in bytes (values + run ends).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 8 + self.run_ends.len() * 4
    }

    /// Byte size RLE would take for `n_runs` runs — used by the encoder to
    /// pick RLE vs bit packing.
    pub fn estimate_bytes(n_runs: usize) -> usize {
        n_runs * 12
    }

    /// Count runs in `codes` without building the encoding.
    pub fn count_runs(codes: &[u64]) -> usize {
        if codes.is_empty() {
            return 0;
        }
        1 + codes.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Serialization accessors.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
    pub fn run_ends(&self) -> &[u32] {
        &self.run_ends
    }

    /// Rebuild from serialized parts.
    pub fn from_raw(values: Vec<u64>, run_ends: Vec<u32>) -> Self {
        assert_eq!(values.len(), run_ends.len());
        debug_assert!(
            run_ends.windows(2).all(|w| w[0] < w[1]),
            "run ends not increasing"
        );
        RleVec { values, run_ends }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let codes = vec![5, 5, 5, 1, 1, 9, 9, 9, 9, 0];
        let r = RleVec::from_codes(&codes);
        assert_eq!(r.n_runs(), 4);
        assert_eq!(r.len(), 10);
        let mut out = Vec::new();
        r.decode_into(&mut out);
        assert_eq!(out, codes);
    }

    #[test]
    fn random_access() {
        let codes = vec![7, 7, 3, 3, 3, 3, 8];
        let r = RleVec::from_codes(&codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(r.get(i), c, "get({i})");
        }
    }

    #[test]
    fn empty() {
        let r = RleVec::from_codes(&[]);
        assert_eq!(r.len(), 0);
        assert_eq!(r.n_runs(), 0);
        let mut out = Vec::new();
        r.decode_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn iter_runs_covers_everything() {
        let codes = vec![1, 1, 2, 3, 3, 3];
        let r = RleVec::from_codes(&codes);
        let runs: Vec<_> = r.iter_runs().collect();
        assert_eq!(runs, vec![(1, 0, 2), (2, 2, 3), (3, 3, 6)]);
    }

    #[test]
    fn count_runs_matches() {
        let codes = vec![1, 1, 2, 3, 3, 3, 1];
        assert_eq!(RleVec::count_runs(&codes), 4);
        assert_eq!(RleVec::from_codes(&codes).n_runs(), 4);
        assert_eq!(RleVec::count_runs(&[]), 0);
        assert_eq!(RleVec::count_runs(&[9]), 1);
    }

    #[test]
    fn raw_roundtrip() {
        let codes = vec![4, 4, 4, 2, 2];
        let r = RleVec::from_codes(&codes);
        let s = RleVec::from_raw(r.values().to_vec(), r.run_ends().to_vec());
        assert_eq!(r, s);
    }
}
