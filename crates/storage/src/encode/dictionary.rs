//! Sorted dictionaries for dictionary encoding.
//!
//! Dictionaries are *sorted*, so a range predicate on the raw value becomes
//! a contiguous code interval — this is what lets scans evaluate predicates
//! directly on encoded data without decompressing. SQL Server distinguishes
//! a *primary* (global, shared across segments of a column) dictionary and
//! per-segment *secondary* dictionaries; here a dictionary is an
//! `Arc<Dictionary>` that a row-group builder may share across row groups of
//! the same column when the value set is stable (see `builder`).

use std::ops::Bound;
use std::sync::Arc;

use cstore_common::convert::usize_from_u32;
use cstore_common::{DataType, Value};

/// The sorted distinct values of a dictionary-encoded column segment.
#[derive(Clone, Debug, PartialEq)]
pub enum Dictionary {
    /// Sorted distinct strings.
    Str(Vec<Arc<str>>),
    /// Sorted distinct integers (for dictionary-encoded integer columns).
    I64(Vec<i64>),
    /// Sorted distinct floats (total order; NaNs sort last).
    F64(Vec<f64>),
}

/// Dictionary codes live in `u32`: a dictionary never outgrows its row
/// group (~1M rows), so any index fits. Saturate defensively instead of
/// truncating if that invariant is ever broken upstream.
#[inline]
fn code_u32(i: usize) -> u32 {
    u32::try_from(i).unwrap_or(u32::MAX)
}

impl Dictionary {
    /// Build a sorted dictionary from (possibly duplicated) values of one
    /// type and return it together with a function domain check.
    pub fn build_str<'a>(values: impl Iterator<Item = &'a str>) -> Dictionary {
        let mut v: Vec<&str> = values.collect();
        v.sort_unstable();
        v.dedup();
        Dictionary::Str(v.into_iter().map(Arc::from).collect())
    }

    pub fn build_i64(values: impl Iterator<Item = i64>) -> Dictionary {
        let mut v: Vec<i64> = values.collect();
        v.sort_unstable();
        v.dedup();
        Dictionary::I64(v)
    }

    pub fn build_f64(values: impl Iterator<Item = f64>) -> Dictionary {
        let mut v: Vec<f64> = values.collect();
        v.sort_unstable_by(|a, b| a.total_cmp(b));
        v.dedup_by(|a, b| a.total_cmp(b).is_eq());
        Dictionary::F64(v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Dictionary::Str(v) => v.len(),
            Dictionary::I64(v) => v.len(),
            Dictionary::F64(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The code of `value`, if present.
    pub fn code_of(&self, value: &Value) -> Option<u32> {
        match (self, value) {
            (Dictionary::Str(v), Value::Str(s)) => v
                .binary_search_by(|e| e.as_ref().cmp(s.as_ref()))
                .ok()
                .map(code_u32),
            (Dictionary::I64(v), _) => {
                let k = value.as_i64()?;
                v.binary_search(&k).ok().map(code_u32)
            }
            (Dictionary::F64(v), Value::Float64(f)) => {
                v.binary_search_by(|e| e.total_cmp(f)).ok().map(code_u32)
            }
            _ => None,
        }
    }

    /// Where `value` would sit in code space: `Ok(code)` if present,
    /// `Err(insertion_point)` if between codes. Drives predicate rewriting
    /// into code space.
    pub fn search(&self, value: &Value) -> Result<u32, u32> {
        let r = match (self, value) {
            (Dictionary::Str(v), Value::Str(s)) => {
                v.binary_search_by(|e| e.as_ref().cmp(s.as_ref()))
            }
            (Dictionary::I64(v), _) => match value.as_i64() {
                Some(k) => v.binary_search(&k),
                None => Err(v.len()),
            },
            (Dictionary::F64(v), Value::Float64(f)) => v.binary_search_by(|e| e.total_cmp(f)),
            (Dictionary::F64(v), _) => match value.as_f64() {
                Some(f) => v.binary_search_by(|e| e.total_cmp(&f)),
                None => Err(v.len()),
            },
            _ => Err(self.len()),
        };
        match r {
            Ok(i) => Ok(code_u32(i)),
            Err(i) => Err(code_u32(i)),
        }
    }

    /// The code interval (inclusive bounds in code space) matching a raw
    /// value interval. Returns `None` when no code can match.
    pub fn code_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Option<(u32, u32)> {
        let n = code_u32(self.len());
        if n == 0 {
            return None;
        }
        let lo_code = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => match self.search(v) {
                Ok(c) => c,
                Err(ins) => ins,
            },
            Bound::Excluded(v) => match self.search(v) {
                Ok(c) => c + 1,
                Err(ins) => ins,
            },
        };
        let hi_code = match hi {
            Bound::Unbounded => n - 1,
            Bound::Included(v) => match self.search(v) {
                Ok(c) => c,
                Err(0) => return None,
                Err(ins) => ins - 1,
            },
            Bound::Excluded(v) => match self.search(v) {
                Ok(0) | Err(0) => return None,
                Ok(c) => c - 1,
                Err(ins) => ins - 1,
            },
        };
        (lo_code < n && lo_code <= hi_code).then_some((lo_code, hi_code))
    }

    /// Decode one code back to a `Value` of column type `ty`.
    pub fn value_at(&self, code: u32, ty: DataType) -> Value {
        match self {
            Dictionary::Str(v) => Value::Str(v[usize_from_u32(code)].clone()),
            Dictionary::I64(v) => Value::from_i64(ty, v[usize_from_u32(code)]),
            Dictionary::F64(v) => Value::Float64(v[usize_from_u32(code)]),
        }
    }

    /// Raw string at `code` (dictionary must be `Str`).
    pub fn str_at(&self, code: u32) -> &Arc<str> {
        match self {
            Dictionary::Str(v) => &v[usize_from_u32(code)],
            // lint: allow(panic) — typed-accessor contract, same class as slice indexing
            _ => panic!("str_at on non-string dictionary"),
        }
    }

    /// Raw i64 at `code` (dictionary must be `I64`).
    pub fn i64_at(&self, code: u32) -> i64 {
        match self {
            Dictionary::I64(v) => v[usize_from_u32(code)],
            // lint: allow(panic) — typed-accessor contract, same class as slice indexing
            _ => panic!("i64_at on non-integer dictionary"),
        }
    }

    /// Raw f64 at `code` (dictionary must be `F64`).
    pub fn f64_at(&self, code: u32) -> f64 {
        match self {
            Dictionary::F64(v) => v[usize_from_u32(code)],
            // lint: allow(panic) — typed-accessor contract, same class as slice indexing
            _ => panic!("f64_at on non-float dictionary"),
        }
    }

    /// Whether every value in `values` is already present (used when
    /// deciding to share a global dictionary).
    pub fn covers_i64(&self, values: &[i64]) -> bool {
        match self {
            Dictionary::I64(v) => values.iter().all(|k| v.binary_search(k).is_ok()),
            _ => false,
        }
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Dictionary::Str(v) => v.iter().map(|s| s.len() + 16).sum(),
            Dictionary::I64(v) => v.len() * 8,
            Dictionary::F64(v) => v.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_dict() -> Dictionary {
        Dictionary::build_str(["cherry", "apple", "banana", "apple"].into_iter())
    }

    #[test]
    fn build_sorts_and_dedups() {
        let d = str_dict();
        assert_eq!(d.len(), 3);
        assert_eq!(d.str_at(0).as_ref(), "apple");
        assert_eq!(d.str_at(2).as_ref(), "cherry");
    }

    #[test]
    fn code_of_finds_values() {
        let d = str_dict();
        assert_eq!(d.code_of(&Value::str("banana")), Some(1));
        assert_eq!(d.code_of(&Value::str("durian")), None);
    }

    #[test]
    fn code_range_inclusive() {
        let d = str_dict();
        // apple..=cherry covers everything
        let r = d.code_range(
            Bound::Included(&Value::str("apple")),
            Bound::Included(&Value::str("cherry")),
        );
        assert_eq!(r, Some((0, 2)));
    }

    #[test]
    fn code_range_between_entries() {
        let d = str_dict();
        // > "apricot" (between apple and banana) means codes 1..=2
        let r = d.code_range(Bound::Excluded(&Value::str("apricot")), Bound::Unbounded);
        assert_eq!(r, Some((1, 2)));
        // < "aardvark" matches nothing
        let r = d.code_range(Bound::Unbounded, Bound::Excluded(&Value::str("aardvark")));
        assert_eq!(r, None);
        // > "zebra" matches nothing
        let r = d.code_range(Bound::Excluded(&Value::str("zebra")), Bound::Unbounded);
        assert_eq!(r, None);
    }

    #[test]
    fn i64_dictionary() {
        let d = Dictionary::build_i64([30, 10, 20, 10].into_iter());
        assert_eq!(d.len(), 3);
        assert_eq!(d.code_of(&Value::Int64(20)), Some(1));
        let r = d.code_range(
            Bound::Included(&Value::Int64(15)),
            Bound::Included(&Value::Int64(30)),
        );
        assert_eq!(r, Some((1, 2)));
        assert_eq!(d.value_at(2, DataType::Int64), Value::Int64(30));
        assert!(d.covers_i64(&[10, 30]));
        assert!(!d.covers_i64(&[10, 11]));
    }

    #[test]
    fn f64_dictionary_handles_order() {
        let d = Dictionary::build_f64([2.5, -1.0, 2.5, 0.0].into_iter());
        assert_eq!(d.len(), 3);
        assert_eq!(d.code_of(&Value::Float64(2.5)), Some(2));
        assert_eq!(d.value_at(0, DataType::Float64), Value::Float64(-1.0));
    }

    #[test]
    fn empty_dictionary_range() {
        let d = Dictionary::build_i64(std::iter::empty());
        assert_eq!(d.code_range(Bound::Unbounded, Bound::Unbounded), None);
    }
}
