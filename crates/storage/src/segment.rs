//! Column segments: the unit of columnar storage.
//!
//! A segment holds one column of one row group. Its layers:
//!
//! ```text
//! raw values ──primary encoding──► codes ──payload compression──► bytes
//!              (dictionary or            (RLE or bit packing)
//!               value-based)
//! ```
//!
//! plus a NULL bitmap and min/max metadata. Scans can (a) decode the whole
//! segment into a vector, or (b) evaluate a pushed-down predicate directly
//! on codes without decompressing (`eval_pred`).

use std::sync::Arc;

use cstore_common::{Bitmap, DataType, Error, Result, Value};

use crate::encode::{Dictionary, PackedInts, PayloadKind, PrimaryEncoding, RleVec, ValueEncoding};
use crate::pred::ColumnPred;

/// The physically compressed code sequence.
#[derive(Clone, Debug)]
pub enum Payload {
    Rle(RleVec),
    Packed(PackedInts),
}

impl Payload {
    pub fn len(&self) -> usize {
        match self {
            Payload::Rle(r) => r.len(),
            Payload::Packed(p) => p.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Rle(_) => PayloadKind::Rle,
            Payload::Packed(_) => PayloadKind::BitPacked,
        }
    }

    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        match self {
            Payload::Rle(r) => r.get(idx),
            Payload::Packed(p) => p.get(idx),
        }
    }

    pub fn decode_into(&self, out: &mut Vec<u64>) {
        match self {
            Payload::Rle(r) => r.decode_into(out),
            Payload::Packed(p) => p.decode_into(out),
        }
    }

    pub fn payload_bytes(&self) -> usize {
        match self {
            Payload::Rle(r) => r.payload_bytes(),
            Payload::Packed(p) => p.payload_bytes(),
        }
    }

    /// Set, in `out`, every row whose code lies in `[lo, hi]`.
    fn mark_code_range(&self, lo: u64, hi: u64, out: &mut Bitmap) {
        match self {
            Payload::Rle(r) => {
                for (code, s, e) in r.iter_runs() {
                    if code >= lo && code <= hi {
                        for i in s..e {
                            out.set(i);
                        }
                    }
                }
            }
            Payload::Packed(p) => {
                for i in 0..p.len() {
                    let c = p.get(i);
                    if c >= lo && c <= hi {
                        out.set(i);
                    }
                }
            }
        }
    }
}

/// Descriptive metadata of a segment, kept in the row-group directory so
/// elimination decisions never touch payload bytes.
#[derive(Clone, Debug)]
pub struct SegmentMeta {
    pub data_type: DataType,
    pub row_count: u32,
    pub null_count: u32,
    /// Min over non-null values (`None` iff all values are NULL).
    pub min: Option<Value>,
    /// Max over non-null values.
    pub max: Option<Value>,
    pub primary: PrimaryEncoding,
    pub payload: PayloadKind,
    /// Distinct non-null values, when known (dictionary size).
    pub distinct_count: Option<u32>,
    /// Encoded payload size in bytes (codes only).
    pub payload_bytes: u64,
    /// Dictionary heap size in bytes (0 for value-based encoding).
    pub dict_bytes: u64,
}

/// One column of one row group, fully encoded.
#[derive(Clone, Debug)]
pub struct ColumnSegment {
    pub meta: SegmentMeta,
    pub(crate) payload: Payload,
    pub(crate) nulls: Option<Bitmap>,
    /// Present iff `meta.primary == Dictionary`.
    pub(crate) dict: Option<Arc<Dictionary>>,
    /// Present iff `meta.primary == ValueBased`.
    pub(crate) venc: Option<ValueEncoding>,
    /// Largest code in the payload (cached for predicate rewriting).
    pub(crate) max_code: u64,
}

/// A decoded segment, in the cheapest faithful representation:
/// integer-backed and float columns decode to raw values; strings stay as
/// dictionary codes plus a shared dictionary (batch operators work on codes).
#[derive(Clone, Debug)]
pub enum SegmentValues {
    I64 {
        values: Vec<i64>,
        nulls: Option<Bitmap>,
    },
    F64 {
        values: Vec<f64>,
        nulls: Option<Bitmap>,
    },
    Str {
        codes: Vec<u32>,
        dict: Arc<Dictionary>,
        nulls: Option<Bitmap>,
    },
}

impl SegmentValues {
    pub fn len(&self) -> usize {
        match self {
            SegmentValues::I64 { values, .. } => values.len(),
            SegmentValues::F64 { values, .. } => values.len(),
            SegmentValues::Str { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` as a `Value` of logical type `ty`.
    pub fn value_at(&self, idx: usize, ty: DataType) -> Value {
        match self {
            SegmentValues::I64 { values, nulls } => {
                if nulls.as_ref().is_some_and(|n| n.get(idx)) {
                    Value::Null
                } else {
                    Value::from_i64(ty, values[idx])
                }
            }
            SegmentValues::F64 { values, nulls } => {
                if nulls.as_ref().is_some_and(|n| n.get(idx)) {
                    Value::Null
                } else {
                    Value::Float64(values[idx])
                }
            }
            SegmentValues::Str { codes, dict, nulls } => {
                if nulls.as_ref().is_some_and(|n| n.get(idx)) {
                    Value::Null
                } else {
                    Value::Str(dict.str_at(codes[idx]).clone())
                }
            }
        }
    }
}

impl ColumnSegment {
    /// Assemble a segment from encoder output (see `builder`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        data_type: DataType,
        row_count: u32,
        nulls: Option<Bitmap>,
        min: Option<Value>,
        max: Option<Value>,
        payload: Payload,
        dict: Option<Arc<Dictionary>>,
        venc: Option<ValueEncoding>,
        max_code: u64,
    ) -> ColumnSegment {
        debug_assert_eq!(payload.len(), row_count as usize);
        debug_assert!(dict.is_some() ^ venc.is_some());
        let null_count = nulls.as_ref().map_or(0, |n| n.count_ones() as u32);
        let meta = SegmentMeta {
            data_type,
            row_count,
            null_count,
            min,
            max,
            primary: if dict.is_some() {
                PrimaryEncoding::Dictionary
            } else {
                PrimaryEncoding::ValueBased
            },
            payload: payload.kind(),
            distinct_count: dict.as_ref().map(|d| d.len() as u32),
            payload_bytes: payload.payload_bytes() as u64,
            dict_bytes: dict.as_ref().map_or(0, |d| d.heap_bytes() as u64),
        };
        ColumnSegment {
            meta,
            payload,
            nulls,
            dict,
            venc,
            max_code,
        }
    }

    pub fn row_count(&self) -> usize {
        self.meta.row_count as usize
    }

    pub fn data_type(&self) -> DataType {
        self.meta.data_type
    }

    pub fn dictionary(&self) -> Option<&Arc<Dictionary>> {
        self.dict.as_ref()
    }

    pub fn value_encoding(&self) -> Option<ValueEncoding> {
        self.venc
    }

    pub fn nulls(&self) -> Option<&Bitmap> {
        self.nulls.as_ref()
    }

    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    pub fn max_code(&self) -> u64 {
        self.max_code
    }

    /// Total encoded size in bytes (payload + dictionary + null bitmap).
    /// This is the number the compression experiments report.
    pub fn encoded_bytes(&self) -> usize {
        self.meta.payload_bytes as usize
            + self.meta.dict_bytes as usize
            + self.nulls.as_ref().map_or(0, |n| n.words().len() * 8)
    }

    /// Decode the whole segment.
    pub fn decode(&self) -> SegmentValues {
        let _span = cstore_common::trace::global().span("segment.decode");
        let mut codes = Vec::new();
        self.payload.decode_into(&mut codes);
        match (&self.dict, &self.venc) {
            (None, Some(venc)) => {
                let values: Vec<i64> = codes.iter().map(|&c| venc.decode(c)).collect();
                SegmentValues::I64 {
                    values,
                    nulls: self.nulls.clone(),
                }
            }
            (Some(dict), None) => match dict.as_ref() {
                Dictionary::Str(_) => SegmentValues::Str {
                    codes: codes.iter().map(|&c| c as u32).collect(),
                    dict: dict.clone(),
                    nulls: self.nulls.clone(),
                },
                Dictionary::I64(_) => {
                    let values: Vec<i64> = codes.iter().map(|&c| dict.i64_at(c as u32)).collect();
                    SegmentValues::I64 {
                        values,
                        nulls: self.nulls.clone(),
                    }
                }
                Dictionary::F64(_) => {
                    let values: Vec<f64> = codes.iter().map(|&c| dict.f64_at(c as u32)).collect();
                    SegmentValues::F64 {
                        values,
                        nulls: self.nulls.clone(),
                    }
                }
            },
            // lint: allow(panic) — `assemble` guarantees exactly one
            // primary encoding
            _ => unreachable!("segment must have exactly one primary encoding"),
        }
    }

    /// The value of row `idx` (random access; slow path used by row fetches).
    pub fn value_at(&self, idx: usize) -> Value {
        if self.nulls.as_ref().is_some_and(|n| n.get(idx)) {
            return Value::Null;
        }
        let code = self.payload.get(idx);
        match (&self.dict, &self.venc) {
            (None, Some(venc)) => Value::from_i64(self.meta.data_type, venc.decode(code)),
            (Some(dict), None) => dict.value_at(code as u32, self.meta.data_type),
            // lint: allow(panic) — `assemble` guarantees exactly one
            // primary encoding
            _ => unreachable!("segment must have exactly one primary encoding"),
        }
    }

    /// Evaluate a pushed-down predicate directly on the encoded data.
    ///
    /// Returns a bitmap with one bit per row (set = row matches). This is
    /// the paper's "predicates evaluated on compressed data": range and
    /// equality predicates become code intervals (dictionaries are sorted;
    /// value encoding is monotone), so RLE runs are tested once per run and
    /// packed codes once per row without materializing values.
    pub fn eval_pred(&self, pred: &ColumnPred) -> Result<Bitmap> {
        let n = self.row_count();
        match pred {
            ColumnPred::IsNull => Ok(self.nulls.clone().unwrap_or_else(|| Bitmap::zeros(n))),
            ColumnPred::IsNotNull => {
                let mut b = Bitmap::ones(n);
                if let Some(nulls) = &self.nulls {
                    b.subtract(nulls);
                }
                Ok(b)
            }
            ColumnPred::Cmp {
                op: crate::pred::CmpOp::Ne,
                value,
            } => {
                // Ne = NOT(Eq), minus NULL rows.
                let eq = ColumnPred::Cmp {
                    op: crate::pred::CmpOp::Eq,
                    value: value.clone(),
                };
                let mut b = self.eval_pred(&eq)?;
                b.negate();
                if let Some(nulls) = &self.nulls {
                    b.subtract(nulls);
                }
                Ok(b)
            }
            ColumnPred::InList(values) => {
                let mut acc = Bitmap::zeros(n);
                for v in values {
                    let eq = ColumnPred::Cmp {
                        op: crate::pred::CmpOp::Eq,
                        value: v.clone(),
                    };
                    acc.union_with(&self.eval_pred(&eq)?);
                }
                Ok(acc)
            }
            _ => {
                let Some((lo, hi)) = pred.as_range() else {
                    return Err(Error::Storage(format!(
                        "predicate {pred} cannot be pushed to a segment"
                    )));
                };
                let mut out = Bitmap::zeros(n);
                if let Some((clo, chi)) = self.code_range(lo, hi)? {
                    self.payload.mark_code_range(clo, chi, &mut out);
                    // Codes at NULL positions are padding; mask them out.
                    if let Some(nulls) = &self.nulls {
                        out.subtract(nulls);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Translate a raw-value interval into an inclusive code interval.
    fn code_range(
        &self,
        lo: std::ops::Bound<&Value>,
        hi: std::ops::Bound<&Value>,
    ) -> Result<Option<(u64, u64)>> {
        use std::ops::Bound;
        match (&self.dict, &self.venc) {
            (Some(dict), None) => Ok(dict.code_range(lo, hi).map(|(a, b)| (a as u64, b as u64))),
            (None, Some(venc)) => {
                let to_i64 = |b: Bound<&Value>| -> Result<Bound<i64>> {
                    Ok(match b {
                        Bound::Unbounded => Bound::Unbounded,
                        Bound::Included(v) => Bound::Included(v.as_i64().ok_or_else(|| {
                            Error::Type(format!("predicate constant {v:?} is not integer-backed"))
                        })?),
                        Bound::Excluded(v) => Bound::Excluded(v.as_i64().ok_or_else(|| {
                            Error::Type(format!("predicate constant {v:?} is not integer-backed"))
                        })?),
                    })
                };
                Ok(venc.code_range(to_i64(lo)?, to_i64(hi)?, self.max_code))
            }
            // lint: allow(panic) — `assemble` guarantees exactly one
            // primary encoding
            _ => unreachable!("segment must have exactly one primary encoding"),
        }
    }

    /// May any row in this segment match `pred`? (Segment elimination.)
    pub fn may_match(&self, pred: &ColumnPred) -> bool {
        pred.may_match(
            self.meta.min.as_ref(),
            self.meta.max.as_ref(),
            self.meta.null_count as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::encode_column;
    use crate::pred::CmpOp;

    fn int_segment(values: &[Option<i64>]) -> ColumnSegment {
        let vals: Vec<Value> = values
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Int64))
            .collect();
        encode_column(DataType::Int64, &vals, None).unwrap()
    }

    fn str_segment(values: &[Option<&str>]) -> ColumnSegment {
        let vals: Vec<Value> = values
            .iter()
            .map(|v| v.map_or(Value::Null, Value::from))
            .collect();
        encode_column(DataType::Utf8, &vals, None).unwrap()
    }

    #[test]
    fn int_roundtrip_with_nulls() {
        let seg = int_segment(&[Some(10), None, Some(30), Some(10), None]);
        assert_eq!(seg.row_count(), 5);
        assert_eq!(seg.meta.null_count, 2);
        assert_eq!(seg.meta.min, Some(Value::Int64(10)));
        assert_eq!(seg.meta.max, Some(Value::Int64(30)));
        assert_eq!(seg.value_at(0), Value::Int64(10));
        assert_eq!(seg.value_at(1), Value::Null);
        assert_eq!(seg.value_at(2), Value::Int64(30));
        match seg.decode() {
            SegmentValues::I64 { values, nulls } => {
                assert_eq!(values[0], 10);
                assert_eq!(values[2], 30);
                assert!(nulls.unwrap().get(1));
            }
            other => panic!("wrong decode shape: {other:?}"),
        }
    }

    #[test]
    fn str_roundtrip() {
        let seg = str_segment(&[Some("b"), Some("a"), None, Some("b")]);
        assert_eq!(seg.value_at(0), Value::str("b"));
        assert_eq!(seg.value_at(1), Value::str("a"));
        assert_eq!(seg.value_at(2), Value::Null);
        assert_eq!(seg.meta.min, Some(Value::str("a")));
        assert_eq!(seg.meta.max, Some(Value::str("b")));
        assert_eq!(seg.meta.distinct_count, Some(2));
    }

    #[test]
    fn eval_pred_range_on_value_encoding() {
        let seg = int_segment(&[Some(10), Some(20), Some(30), Some(40), None]);
        let b = seg
            .eval_pred(&ColumnPred::Between {
                lo: Value::Int64(15),
                hi: Value::Int64(35),
            })
            .unwrap();
        assert_eq!(b.to_indices(), vec![1, 2]);
    }

    #[test]
    fn eval_pred_eq_on_strings() {
        let seg = str_segment(&[Some("x"), Some("y"), Some("x"), None]);
        let b = seg
            .eval_pred(&ColumnPred::Cmp {
                op: CmpOp::Eq,
                value: Value::str("x"),
            })
            .unwrap();
        assert_eq!(b.to_indices(), vec![0, 2]);
    }

    #[test]
    fn eval_pred_ne_excludes_nulls() {
        let seg = int_segment(&[Some(1), Some(2), None]);
        let b = seg
            .eval_pred(&ColumnPred::Cmp {
                op: CmpOp::Ne,
                value: Value::Int64(1),
            })
            .unwrap();
        assert_eq!(b.to_indices(), vec![1]);
    }

    #[test]
    fn eval_pred_in_list() {
        let seg = int_segment(&[Some(1), Some(2), Some(3), Some(2)]);
        let b = seg
            .eval_pred(&ColumnPred::InList(vec![Value::Int64(1), Value::Int64(3)]))
            .unwrap();
        assert_eq!(b.to_indices(), vec![0, 2]);
    }

    #[test]
    fn eval_pred_is_null() {
        let seg = int_segment(&[Some(1), None, Some(3)]);
        assert_eq!(
            seg.eval_pred(&ColumnPred::IsNull).unwrap().to_indices(),
            vec![1]
        );
        assert_eq!(
            seg.eval_pred(&ColumnPred::IsNotNull).unwrap().to_indices(),
            vec![0, 2]
        );
    }

    #[test]
    fn eval_pred_matches_naive_for_many_ops() {
        let data: Vec<Option<i64>> = (0..200)
            .map(|i| {
                if i % 13 == 0 {
                    None
                } else {
                    Some((i * 7) % 50)
                }
            })
            .collect();
        let seg = int_segment(&data);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for k in [0i64, 7, 23, 49, 50, -1] {
                let pred = ColumnPred::Cmp {
                    op,
                    value: Value::Int64(k),
                };
                let got = seg.eval_pred(&pred).unwrap();
                for (i, v) in data.iter().enumerate() {
                    let want = v.map_or(false, |x| pred.matches(&Value::Int64(x)));
                    assert_eq!(got.get(i), want, "op={op:?} k={k} row={i} v={v:?}");
                }
            }
        }
    }

    #[test]
    fn may_match_uses_minmax() {
        let seg = int_segment(&[Some(100), Some(200)]);
        assert!(!seg.may_match(&ColumnPred::Cmp {
            op: CmpOp::Lt,
            value: Value::Int64(100)
        }));
        assert!(seg.may_match(&ColumnPred::Cmp {
            op: CmpOp::Le,
            value: Value::Int64(100)
        }));
    }
}
