//! Column-store storage engine.
//!
//! Implements the storage side of SQL Server's column store indexes as
//! described in *"Enhancements to SQL Server Column Stores"* (SIGMOD 2013):
//!
//! * data is split into **row groups** of up to ~1M rows;
//! * each column of a row group is stored as a **column segment**;
//! * segments are encoded with **dictionary encoding** (strings, floats,
//!   low-cardinality numerics) or **value-based encoding** (integers:
//!   subtract a base, divide by a common factor), then compressed with
//!   **run-length encoding** or **bit packing**, whichever is smaller;
//! * rows may be **reordered** (Vertipaq-style) before encoding to lengthen
//!   runs;
//! * each segment records **min/max metadata** so scans can skip whole
//!   segments (*segment elimination*);
//! * cold row groups can additionally be wrapped in **archival compression**
//!   (an LZ77/LZSS layer) trading CPU for a further size reduction;
//! * everything serializes to a versioned, checksummed binary **format**
//!   stored in a **blob store** (in-memory or file-backed).

pub mod archive;
pub mod blob;
pub mod builder;
pub mod encode;
pub mod faulty;
pub mod format;
pub mod log;
pub mod pred;
pub mod reorder;
pub mod rowgroup;
pub mod segment;
pub mod stats;
pub mod table;

pub use builder::{RowGroupBuilder, SortMode};
pub use faulty::FaultyBlobStore;
pub use log::{FileLogStore, LogStore, MemLogStore};
pub use pred::{CmpOp, ColumnPred};
pub use rowgroup::{CompressedRowGroup, CompressionLevel};
pub use segment::{ColumnSegment, SegmentValues};
pub use table::{BlobQuarantine, ColumnStore, QuarantinedKind};
