//! Blob storage for serialized row groups.
//!
//! SQL Server stores column segments as LOBs managed by its storage engine
//! (buffer pool, allocation units). The experiments only need the columnar
//! format itself, so this module substitutes a minimal keyed blob store
//! with two backends: in-memory (default) and file-per-blob on disk.

use std::fs;
use std::path::{Path, PathBuf};

use cstore_common::{Error, FxHashMap, Result};

/// Flush a directory's metadata so a completed create/rename/unlink in it
/// survives power loss, not just process crash. POSIX only orders the
/// rename itself; the directory entry lives in the parent's data and
/// needs its own fsync. On non-Unix targets opening a directory for sync
/// is not portable; the rename is still atomic there, just not durably
/// ordered.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    // lint: allow(discard) — parameter deliberately unused off-unix
    let _ = dir;
    Ok(())
}

/// A keyed store of immutable byte blobs.
pub trait BlobStore: Send + Sync {
    /// Store `bytes` under `key`, replacing any previous blob.
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()>;
    /// Fetch the blob stored under `key`.
    fn get(&self, key: &str) -> Result<Vec<u8>>;
    /// Remove the blob under `key` (no-op if absent).
    fn delete(&mut self, key: &str) -> Result<()>;
    /// All stored keys, in unspecified order.
    fn keys(&self) -> Vec<String>;
}

/// In-memory blob store. `Clone` snapshots the full contents — chaos
/// tests use this to capture a "disk image" before a simulated crash.
#[derive(Default, Clone)]
pub struct MemBlobStore {
    blobs: FxHashMap<String, Vec<u8>>,
}

impl MemBlobStore {
    pub fn new() -> Self {
        MemBlobStore::default()
    }

    /// Total stored bytes (for size accounting in tests).
    pub fn total_bytes(&self) -> usize {
        self.blobs.values().map(|b| b.len()).sum()
    }
}

impl BlobStore for MemBlobStore {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()> {
        self.blobs.insert(key.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.blobs
            .get(key)
            .cloned()
            .ok_or_else(|| Error::Storage(format!("blob '{key}' not found")))
    }

    fn delete(&mut self, key: &str) -> Result<()> {
        self.blobs.remove(key);
        Ok(())
    }

    fn keys(&self) -> Vec<String> {
        self.blobs.keys().cloned().collect()
    }
}

/// File-per-blob store rooted at a directory.
pub struct FileBlobStore {
    root: PathBuf,
}

impl FileBlobStore {
    /// Open (creating if needed) a blob store at `root`. A freshly
    /// created root directory is fsynced via its parent so the store
    /// itself survives power loss, not just the blobs inside it.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        if !root.is_dir() {
            fs::create_dir_all(&root)?;
            if let Some(parent) = root.parent().filter(|p| !p.as_os_str().is_empty()) {
                fsync_dir(parent)?;
            }
        }
        Ok(FileBlobStore { root })
    }

    fn path(&self, key: &str) -> Result<PathBuf> {
        // Keys become file names; reject separators to avoid traversal.
        if key.is_empty() || key.contains(['/', '\\', '\0']) {
            return Err(Error::Storage(format!("invalid blob key '{key}'")));
        }
        Ok(self.root.join(format!("{key}.blob")))
    }

    /// Flush directory metadata so a completed rename/unlink survives a
    /// crash (see [`fsync_dir`]).
    fn sync_root(&self) -> Result<()> {
        fsync_dir(&self.root)
    }
}

impl BlobStore for FileBlobStore {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()> {
        use std::io::Write;
        let path = self.path(key)?;
        // Write-then-fsync-then-rename-then-fsync(dir): readers never
        // observe a torn blob, and a crash after `put` returns cannot
        // roll the blob back or leave the rename unpublished.
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.sync_root()?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let path = self.path(key)?;
        fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                Error::Storage(format!("blob '{key}' not found"))
            } else {
                Error::Io(e)
            }
        })
    }

    fn delete(&mut self, key: &str) -> Result<()> {
        let path = self.path(key)?;
        match fs::remove_file(&path) {
            // Garbage collection relies on a delete staying deleted: an
            // un-fsynced unlink can resurrect a stale generation blob
            // after power loss, so flush the directory entry too.
            Ok(()) => self.sync_root(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn keys(&self) -> Vec<String> {
        let Ok(rd) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        rd.filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".blob").map(str::to_owned)
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn BlobStore) {
        store.put("a", b"alpha").unwrap();
        store.put("b", b"beta").unwrap();
        assert_eq!(store.get("a").unwrap(), b"alpha");
        store.put("a", b"alpha2").unwrap();
        assert_eq!(store.get("a").unwrap(), b"alpha2");
        let mut keys = store.keys();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
        store.delete("a").unwrap();
        assert!(store.get("a").is_err());
        store.delete("a").unwrap(); // idempotent
    }

    #[test]
    fn mem_store() {
        let mut s = MemBlobStore::new();
        exercise(&mut s);
        assert_eq!(s.total_bytes(), 4);
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir().join(format!("cstore-blob-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FileBlobStore::open(&dir).unwrap();
        exercise(&mut s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_put_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("cstore-blob-sync-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FileBlobStore::open(&dir).unwrap();
        s.put("k", b"first").unwrap();
        // Overwrite goes through the same tmp+rename+fsync path.
        s.put("k", b"second-version").unwrap();
        assert_eq!(s.get("k").unwrap(), b"second-version");
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| !n.ends_with(".blob"))
            .collect();
        assert!(leftovers.is_empty(), "stray files after put: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_rejects_traversal() {
        let dir = std::env::temp_dir().join(format!("cstore-blob-test2-{}", std::process::id()));
        let mut s = FileBlobStore::open(&dir).unwrap();
        assert!(s.put("../evil", b"x").is_err());
        assert!(s.put("", b"x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
