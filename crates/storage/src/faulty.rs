//! A fault-injecting [`BlobStore`] wrapper.
//!
//! [`FaultyBlobStore`] decorates any backend and consults a shared
//! [`FaultInjector`] at named points before every operation:
//!
//! * `blob.put` / `blob.put:<key>` — before storing a blob;
//! * `blob.get` / `blob.get:<key>` — before fetching a blob;
//! * `blob.delete` / `blob.delete:<key>` — before removing a blob.
//!
//! The generic point fires for every key; the `:<key>` point only for that
//! key, letting tests target (say) the catalog manifest specifically. What
//! each [`FaultKind`] does here:
//!
//! * `IoError` — the operation fails with an IO error and has no effect;
//! * `TornWrite` — `put` stores a strict prefix of the bytes and *reports
//!   success* (a torn write is only discovered on read, by the CRC);
//! * `BitFlip` — `put` stores the bytes with one bit flipped and reports
//!   success; `get` returns the blob with one bit flipped;
//! * `Crash` — the in-flight operation does not happen and every later
//!   operation fails: the "process" is dead until the test recovers the
//!   inner store via [`FaultyBlobStore::into_inner`] (the "restart");
//! * `TornCrash` — like `Crash`, but the in-flight `put` leaves a torn
//!   prefix behind, modelling a power cut mid-write.

use cstore_common::fault::{FaultInjector, FaultKind};
use cstore_common::Result;

use crate::blob::BlobStore;

/// A [`BlobStore`] decorator that injects faults from a [`FaultInjector`].
pub struct FaultyBlobStore<S> {
    inner: S,
    faults: FaultInjector,
}

impl<S: BlobStore> FaultyBlobStore<S> {
    pub fn new(inner: S, faults: FaultInjector) -> Self {
        FaultyBlobStore { inner, faults }
    }

    /// Recover the wrapped store — the surviving "disk" after a simulated
    /// crash, to be reopened by the test.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The shared injector (for arming/inspection through the store).
    pub fn injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Consult the generic and per-key points; the first fault wins.
    fn fault_at(&self, op: &str, key: &str) -> Option<(FaultKind, String)> {
        let generic = format!("blob.{op}");
        if let Some(k) = self.faults.hit(&generic) {
            return Some((k, generic));
        }
        let keyed = format!("blob.{op}:{key}");
        self.faults.hit(&keyed).map(|k| (k, keyed))
    }

    /// A copy of `bytes` cut to a deterministic strict prefix.
    fn tear(&self, bytes: &[u8]) -> Vec<u8> {
        let cut = self.faults.rng_below(bytes.len() as u64) as usize;
        bytes[..cut].to_vec()
    }

    /// A copy of `bytes` with one deterministic bit flipped.
    fn flip(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if !out.is_empty() {
            let pos = self.faults.rng_below(out.len() as u64) as usize;
            let bit = self.faults.rng_below(8) as u8;
            out[pos] ^= 1 << bit;
        }
        out
    }
}

impl<S: BlobStore> BlobStore for FaultyBlobStore<S> {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<()> {
        match self.fault_at("put", key) {
            None => self.inner.put(key, bytes),
            Some((kind @ (FaultKind::IoError | FaultKind::Crash), point)) => {
                Err(kind.to_error(&point))
            }
            Some((FaultKind::TornWrite, _)) => {
                // Report success: torn writes are silent until read back.
                self.inner.put(key, &self.tear(bytes))
            }
            Some((FaultKind::BitFlip, _)) => self.inner.put(key, &self.flip(bytes)),
            Some((kind @ FaultKind::TornCrash, point)) => {
                // The tear lands on disk, then the process dies.
                self.inner.put(key, &self.tear(bytes))?;
                Err(kind.to_error(&point))
            }
        }
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        match self.fault_at("get", key) {
            None => self.inner.get(key),
            Some((FaultKind::BitFlip, _)) => Ok(self.flip(&self.inner.get(key)?)),
            Some((FaultKind::TornWrite, _)) => Ok(self.tear(&self.inner.get(key)?)),
            Some((kind, point)) => Err(kind.to_error(&point)),
        }
    }

    fn delete(&mut self, key: &str) -> Result<()> {
        match self.fault_at("delete", key) {
            None => self.inner.delete(key),
            Some((FaultKind::TornWrite, _)) | Some((FaultKind::BitFlip, _)) => {
                self.inner.delete(key)
            }
            Some((kind, point)) => Err(kind.to_error(&point)),
        }
    }

    fn keys(&self) -> Vec<String> {
        if self.faults.crashed() {
            return Vec::new();
        }
        self.inner.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::MemBlobStore;
    use cstore_common::fault::FaultSpec;
    use cstore_common::FaultInjector;

    fn store(seed: u64) -> (FaultyBlobStore<MemBlobStore>, FaultInjector) {
        let f = FaultInjector::new(seed);
        (FaultyBlobStore::new(MemBlobStore::new(), f.clone()), f)
    }

    #[test]
    fn passthrough_when_unarmed() {
        let (mut s, f) = store(1);
        s.put("a", b"alpha").unwrap();
        assert_eq!(s.get("a").unwrap(), b"alpha");
        s.delete("a").unwrap();
        assert!(s.get("a").is_err());
        assert_eq!(f.fired_total(), 0);
        assert!(f.hits("blob.put") >= 1);
    }

    #[test]
    fn io_error_fires_once_then_recovers() {
        let (mut s, f) = store(2);
        f.arm("blob.put", FaultSpec::new(FaultKind::IoError));
        let err = s.put("a", b"x").unwrap_err();
        assert_eq!(err.code(), "IO");
        assert!(s.get("a").is_err(), "failed put must not store");
        s.put("a", b"x").unwrap();
        assert_eq!(s.get("a").unwrap(), b"x");
    }

    #[test]
    fn torn_write_reports_success_but_truncates() {
        let (mut s, f) = store(3);
        f.arm("blob.put:t", FaultSpec::new(FaultKind::TornWrite));
        s.put("t", b"0123456789").unwrap();
        let got = s.get("t").unwrap();
        assert!(got.len() < 10, "torn write kept all {} bytes", got.len());
        assert_eq!(&b"0123456789"[..got.len()], &got[..]);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let (mut s, f) = store(4);
        f.arm("blob.put:b", FaultSpec::new(FaultKind::BitFlip));
        s.put("b", &[0u8; 16]).unwrap();
        let got = s.get("b").unwrap();
        let ones: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
    }

    #[test]
    fn crash_kills_everything_until_restart() {
        let (mut s, f) = store(5);
        s.put("old", b"durable").unwrap();
        f.arm("blob.put", FaultSpec::new(FaultKind::Crash).after(1));
        assert!(s.put("new", b"lost").is_err());
        assert!(s.get("old").is_err(), "dead process cannot read");
        assert!(s.keys().is_empty());
        // "Restart": recover the disk image.
        let disk = s.into_inner();
        assert_eq!(disk.get("old").unwrap(), b"durable");
        assert!(disk.get("new").is_err(), "crashed put never landed");
    }

    #[test]
    fn torn_crash_leaves_a_prefix() {
        let (mut s, f) = store(6);
        f.arm("blob.put:m", FaultSpec::new(FaultKind::TornCrash));
        assert!(s.put("m", b"manifest-bytes").is_err());
        let disk = s.into_inner();
        let got = disk.get("m").unwrap();
        assert!(got.len() < b"manifest-bytes".len());
    }

    #[test]
    fn keyed_point_targets_one_key_only() {
        let (mut s, f) = store(7);
        f.arm(
            "blob.put:victim",
            FaultSpec::new(FaultKind::IoError).always(),
        );
        s.put("other", b"ok").unwrap();
        assert!(s.put("victim", b"no").is_err());
        s.put("other2", b"ok").unwrap();
    }
}
