//! Versioned, checksummed binary serialization of segments and row groups.
//!
//! Layout conventions: all integers little-endian, fixed width; every
//! serialized segment ends with a CRC-32 over the preceding bytes; blobs
//! start with a magic tag and a format version so future readers can
//! refuse what they don't understand.

use std::sync::Arc;

use cstore_common::convert::{i32_from_i64, u16_from_usize, u32_from_usize, usize_from_u32};
use cstore_common::{Bitmap, DataType, Error, Result, Value};

use crate::encode::{Dictionary, PackedInts, RleVec, ValueEncoding};
use crate::segment::{ColumnSegment, Payload};

pub const SEGMENT_MAGIC: u32 = 0x4753_5343; // "CSSG"
pub const FORMAT_VERSION: u16 = 1;

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            // lint: allow(cast) — table index 0..256 always fits u32
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[usize_from_u32((c ^ u32::from(b)) & 0xFF)] ^ (c >> 8);
    }
    !c
}

// ------------------------------------------------------------- writer

/// Byte-buffer writer with fixed-width little-endian primitives.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed byte string; errors when the length does not
    /// fit the `u32` prefix.
    pub fn lp_bytes(&mut self, v: &[u8]) -> Result<()> {
        self.u32(u32_from_usize(v.len())?);
        self.bytes(v);
        Ok(())
    }

    /// Append a CRC-32 of everything written so far.
    pub fn seal(mut self) -> Vec<u8> {
        let c = crc32(&self.buf);
        self.u32(c);
        self.buf
    }
}

// ------------------------------------------------------------- reader

/// Bounds-checked reader over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn corrupt(what: &str) -> Error {
        Error::Storage(format!("corrupt blob: {what}"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(Self::corrupt("unexpected end of data"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Take exactly `N` bytes as an array; bounds come from [`take`], so
    /// the slice→array conversion cannot fail.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| Self::corrupt("unexpected end of data"))
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    pub fn lp_bytes(&mut self) -> Result<&'a [u8]> {
        let n = usize_from_u32(self.u32()?);
        self.take(n)
    }

    /// Verify the trailing CRC-32 of `data` and return the payload slice.
    pub fn check_crc(data: &[u8]) -> Result<&[u8]> {
        if data.len() < 4 {
            return Err(Self::corrupt("blob shorter than its checksum"));
        }
        let (payload, crc_bytes) = data.split_at(data.len() - 4);
        let stored = crc_bytes
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| Self::corrupt("blob shorter than its checksum"))?;
        if crc32(payload) != stored {
            return Err(Self::corrupt("checksum mismatch"));
        }
        Ok(payload)
    }
}

// -------------------------------------------------- value / type codecs

fn write_type(w: &mut Writer, ty: DataType) {
    match ty {
        DataType::Bool => w.u8(0),
        DataType::Int32 => w.u8(1),
        DataType::Int64 => w.u8(2),
        DataType::Float64 => w.u8(3),
        DataType::Date => w.u8(4),
        DataType::Decimal { scale } => {
            w.u8(5);
            w.u8(scale);
        }
        DataType::Utf8 => w.u8(6),
    }
}

fn read_type(r: &mut Reader<'_>) -> Result<DataType> {
    Ok(match r.u8()? {
        0 => DataType::Bool,
        1 => DataType::Int32,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Date,
        5 => DataType::Decimal { scale: r.u8()? },
        6 => DataType::Utf8,
        t => return Err(Reader::corrupt(&format!("unknown type tag {t}"))),
    })
}

/// Serialize a schema (field names, types, nullability).
pub fn write_schema(w: &mut Writer, schema: &cstore_common::Schema) -> Result<()> {
    w.u16(u16_from_usize(schema.len())?);
    for f in schema.fields() {
        w.lp_bytes(f.name.as_bytes())?;
        write_type(w, f.data_type);
        w.u8(u8::from(f.nullable));
    }
    Ok(())
}

/// Deserialize a schema written by [`write_schema`].
pub fn read_schema(r: &mut Reader<'_>) -> Result<cstore_common::Schema> {
    let n = usize::from(r.u16()?);
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = std::str::from_utf8(r.lp_bytes()?)
            .map_err(|_| Reader::corrupt("invalid UTF-8 in field name"))?
            .to_owned();
        let data_type = read_type(r)?;
        let nullable = r.u8()? != 0;
        fields.push(cstore_common::Field::new(name, data_type, nullable));
    }
    Ok(cstore_common::Schema::new(fields))
}

pub fn write_value(w: &mut Writer, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.u8(0),
        Value::Bool(b) => {
            w.u8(1);
            w.u8(u8::from(*b));
        }
        Value::Int32(x) => {
            w.u8(2);
            w.i64(i64::from(*x));
        }
        Value::Int64(x) => {
            w.u8(3);
            w.i64(*x);
        }
        Value::Float64(x) => {
            w.u8(4);
            w.f64(*x);
        }
        Value::Date(x) => {
            w.u8(5);
            w.i64(i64::from(*x));
        }
        Value::Decimal(x) => {
            w.u8(6);
            w.i64(*x);
        }
        Value::Str(s) => {
            w.u8(7);
            w.lp_bytes(s.as_bytes())?;
        }
    }
    Ok(())
}

pub fn read_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int32(i32_from_i64(r.i64()?)?),
        3 => Value::Int64(r.i64()?),
        4 => Value::Float64(r.f64()?),
        5 => Value::Date(i32_from_i64(r.i64()?)?),
        6 => Value::Decimal(r.i64()?),
        7 => {
            let b = r.lp_bytes()?;
            let s =
                std::str::from_utf8(b).map_err(|_| Reader::corrupt("invalid UTF-8 in value"))?;
            Value::str(s)
        }
        t => return Err(Reader::corrupt(&format!("unknown value tag {t}"))),
    })
}

fn write_opt_value(w: &mut Writer, v: &Option<Value>) -> Result<()> {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            write_value(w, v)?;
        }
    }
    Ok(())
}

fn read_opt_value(r: &mut Reader<'_>) -> Result<Option<Value>> {
    Ok(if r.u8()? == 0 {
        None
    } else {
        Some(read_value(r)?)
    })
}

fn write_bitmap(w: &mut Writer, b: &Bitmap) -> Result<()> {
    w.u32(u32_from_usize(b.len())?);
    for &word in b.words() {
        w.u64(word);
    }
    Ok(())
}

fn read_bitmap(r: &mut Reader<'_>) -> Result<Bitmap> {
    let len = usize_from_u32(r.u32()?);
    let n_words = len.div_ceil(64);
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    Ok(Bitmap::from_words(words, len))
}

fn write_dictionary(w: &mut Writer, d: &Dictionary) -> Result<()> {
    match d {
        Dictionary::Str(v) => {
            w.u8(0);
            w.u32(u32_from_usize(v.len())?);
            for s in v {
                w.lp_bytes(s.as_bytes())?;
            }
        }
        Dictionary::I64(v) => {
            w.u8(1);
            w.u32(u32_from_usize(v.len())?);
            for &x in v {
                w.i64(x);
            }
        }
        Dictionary::F64(v) => {
            w.u8(2);
            w.u32(u32_from_usize(v.len())?);
            for &x in v {
                w.f64(x);
            }
        }
    }
    Ok(())
}

fn read_dictionary(r: &mut Reader<'_>) -> Result<Dictionary> {
    let tag = r.u8()?;
    let n = usize_from_u32(r.u32()?);
    Ok(match tag {
        0 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let b = r.lp_bytes()?;
                let s = std::str::from_utf8(b)
                    .map_err(|_| Reader::corrupt("invalid UTF-8 in dictionary"))?;
                v.push(Arc::from(s));
            }
            Dictionary::Str(v)
        }
        1 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            Dictionary::I64(v)
        }
        2 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            Dictionary::F64(v)
        }
        t => return Err(Reader::corrupt(&format!("unknown dictionary tag {t}"))),
    })
}

// ------------------------------------------------------ segment codec

/// Serialize a segment to a standalone, checksummed blob.
pub fn serialize_segment(seg: &ColumnSegment) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    w.u32(SEGMENT_MAGIC);
    w.u16(FORMAT_VERSION);
    write_type(&mut w, seg.meta.data_type);
    w.u32(seg.meta.row_count);
    match seg.nulls() {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            write_bitmap(&mut w, b)?;
        }
    }
    match (seg.dictionary(), seg.value_encoding()) {
        (None, Some(venc)) => {
            w.u8(0);
            w.i64(venc.base);
            w.u64(venc.divisor);
        }
        (Some(dict), None) => {
            w.u8(1);
            write_dictionary(&mut w, dict)?;
        }
        _ => {
            return Err(Error::Storage(
                "segment must carry exactly one primary encoding".into(),
            ))
        }
    }
    match seg.payload() {
        Payload::Rle(rle) => {
            w.u8(0);
            w.u32(u32_from_usize(rle.n_runs())?);
            for &v in rle.values() {
                w.u64(v);
            }
            for &e in rle.run_ends() {
                w.u32(e);
            }
        }
        Payload::Packed(p) => {
            w.u8(1);
            w.u8(cstore_common::convert::u8_from_u32(p.width())?);
            w.u32(u32_from_usize(p.len())?);
            w.u32(u32_from_usize(p.words().len())?);
            for &word in p.words() {
                w.u64(word);
            }
        }
    }
    w.u64(seg.max_code());
    write_opt_value(&mut w, &seg.meta.min)?;
    write_opt_value(&mut w, &seg.meta.max)?;
    Ok(w.seal())
}

/// Deserialize a segment blob produced by [`serialize_segment`].
pub fn deserialize_segment(data: &[u8]) -> Result<ColumnSegment> {
    let payload_bytes = Reader::check_crc(data)?;
    let mut r = Reader::new(payload_bytes);
    if r.u32()? != SEGMENT_MAGIC {
        return Err(Reader::corrupt("bad segment magic"));
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(Error::Storage(format!(
            "unsupported segment format version {version}"
        )));
    }
    let data_type = read_type(&mut r)?;
    let row_count = r.u32()?;
    let nulls = if r.u8()? == 1 {
        Some(read_bitmap(&mut r)?)
    } else {
        None
    };
    let (dict, venc) = match r.u8()? {
        0 => {
            let base = r.i64()?;
            let divisor = r.u64()?;
            if divisor == 0 {
                return Err(Reader::corrupt("zero divisor"));
            }
            (None, Some(ValueEncoding { base, divisor }))
        }
        1 => (Some(Arc::new(read_dictionary(&mut r)?)), None),
        t => return Err(Reader::corrupt(&format!("unknown primary tag {t}"))),
    };
    let payload = match r.u8()? {
        0 => {
            let n_runs = usize_from_u32(r.u32()?);
            let mut values = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                values.push(r.u64()?);
            }
            let mut run_ends = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                run_ends.push(r.u32()?);
            }
            Payload::Rle(RleVec::from_raw(values, run_ends))
        }
        1 => {
            let width = u32::from(r.u8()?);
            let len = usize_from_u32(r.u32()?);
            let n_words = usize_from_u32(r.u32()?);
            if n_words != len.saturating_mul(usize_from_u32(width)).div_ceil(64) {
                return Err(Reader::corrupt("packed word count mismatch"));
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            Payload::Packed(PackedInts::from_raw(words, width, len))
        }
        t => return Err(Reader::corrupt(&format!("unknown payload tag {t}"))),
    };
    if payload.len() != usize_from_u32(row_count) {
        return Err(Reader::corrupt("payload length != row count"));
    }
    let max_code = r.u64()?;
    let min = read_opt_value(&mut r)?;
    let max = read_opt_value(&mut r)?;
    Ok(ColumnSegment::assemble(
        data_type, row_count, nulls, min, max, payload, dict, venc, max_code,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::encode_column;

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-5);
        w.f64(1.5);
        w.lp_bytes(b"abc").unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.lp_bytes().unwrap(), b"abc");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err());
    }

    #[test]
    fn value_roundtrip() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Int32(-9),
            Value::Int64(1 << 50),
            Value::Float64(-0.25),
            Value::Date(20000),
            Value::Decimal(123_456),
            Value::str("héllo"),
        ];
        let mut w = Writer::new();
        for v in &values {
            write_value(&mut w, v).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &values {
            assert_eq!(&read_value(&mut r).unwrap(), v);
        }
    }

    fn seg_roundtrip(ty: DataType, vals: Vec<Value>) {
        let seg = encode_column(ty, &vals, None).unwrap();
        let bytes = serialize_segment(&seg).unwrap();
        let back = deserialize_segment(&bytes).unwrap();
        assert_eq!(back.row_count(), seg.row_count());
        assert_eq!(back.meta.min, seg.meta.min);
        assert_eq!(back.meta.max, seg.meta.max);
        for i in 0..vals.len() {
            assert_eq!(back.value_at(i), seg.value_at(i), "row {i}");
        }
    }

    #[test]
    fn segment_roundtrips_each_shape() {
        seg_roundtrip(
            DataType::Int64,
            (0..500).map(|i| Value::Int64(i * 10)).collect(),
        );
        seg_roundtrip(
            DataType::Int64,
            (0..500)
                .map(|i| {
                    if i % 9 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i / 100)
                    }
                })
                .collect(),
        );
        seg_roundtrip(
            DataType::Utf8,
            (0..200)
                .map(|i| Value::str(format!("s{}", i % 7)))
                .collect(),
        );
        seg_roundtrip(
            DataType::Float64,
            (0..100).map(|i| Value::Float64(i as f64 / 4.0)).collect(),
        );
        seg_roundtrip(
            DataType::Decimal { scale: 2 },
            (0..100).map(|i| Value::Decimal(i * 25)).collect(),
        );
        seg_roundtrip(DataType::Int64, vec![]);
    }

    #[test]
    fn corruption_detected() {
        let seg = encode_column(
            DataType::Int64,
            &(0..100).map(Value::Int64).collect::<Vec<_>>(),
            None,
        )
        .unwrap();
        let mut bytes = serialize_segment(&seg).unwrap();
        // Flip a payload byte.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = deserialize_segment(&bytes).unwrap_err();
        assert_eq!(err.code(), "STORAGE");
    }

    #[test]
    fn version_mismatch_rejected() {
        let seg = encode_column(DataType::Int64, &[Value::Int64(1)], None).unwrap();
        let mut bytes = serialize_segment(&seg).unwrap();
        bytes[4] = 99; // version lives right after the magic
                       // Fix the CRC so only the version check fires.
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = deserialize_segment(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
