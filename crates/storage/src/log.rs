//! Append-only segment storage for the write-ahead log.
//!
//! The WAL proper (framing, LSNs, group commit, replay) lives in
//! `cstore-delta::wal`; this module is the byte-level substrate: a set of
//! numbered segments supporting append / fsync / read / truncate /
//! remove. Two backends mirror the blob store: [`MemLogStore`] for tests
//! (with an explicit page-cache model so crash tests can discard
//! unsynced bytes) and [`FileLogStore`] for durable file-per-segment
//! storage with directory fsyncs at every metadata commit point.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use cstore_common::sync::Mutex;
use cstore_common::{Error, FxHashMap, Result};

use crate::blob::fsync_dir;

/// A store of numbered append-only log segments.
///
/// Contract: `append` buffers bytes that become durable only after a
/// successful `sync` of the same segment (the file backend inherits this
/// from the OS page cache; the memory backend models it explicitly).
/// `create` and `remove` are durable when they return.
pub trait LogStore: Send {
    /// Existing segment ids, sorted ascending.
    fn segment_ids(&self) -> Result<Vec<u64>>;
    /// Create an empty segment (error if it already exists).
    fn create(&mut self, seg: u64) -> Result<()>;
    /// Append bytes to the end of a segment.
    fn append(&mut self, seg: u64, bytes: &[u8]) -> Result<()>;
    /// Make all appended bytes of a segment durable.
    fn sync(&mut self, seg: u64) -> Result<()>;
    /// Read a segment's full contents (durable and pending bytes).
    fn read(&self, seg: u64) -> Result<Vec<u8>>;
    /// Durably shorten a segment to `len` bytes (drop a torn tail).
    fn truncate(&mut self, seg: u64, len: u64) -> Result<()>;
    /// Durably delete a segment (no-op if absent).
    fn remove(&mut self, seg: u64) -> Result<()>;
}

#[derive(Default, Clone)]
struct MemSegment {
    /// Bytes that would survive power loss.
    durable: Vec<u8>,
    /// Appended but not yet synced bytes (the "page cache").
    pending: Vec<u8>,
}

#[derive(Default)]
struct MemLogInner {
    segments: FxHashMap<u64, MemSegment>,
}

/// In-memory log store with an explicit durability model: `append` lands
/// in a pending buffer, `sync` moves it to the durable image. `Clone`
/// shares the underlying storage, so a test can keep a handle while the
/// WAL owns another and later take [`MemLogStore::crash_image`] — a deep
/// copy holding only the durable bytes, i.e. what a machine reboot
/// would find on disk.
#[derive(Default, Clone)]
pub struct MemLogStore {
    inner: Arc<Mutex<MemLogInner>>,
}

impl MemLogStore {
    pub fn new() -> Self {
        MemLogStore::default()
    }

    /// Deep-copy the store as a crashed machine would see it: durable
    /// bytes only, pending appends discarded.
    pub fn crash_image(&self) -> MemLogStore {
        let inner = self.inner.lock();
        let segments = inner
            .segments
            .iter()
            .map(|(&id, s)| {
                (
                    id,
                    MemSegment {
                        durable: s.durable.clone(),
                        pending: Vec::new(),
                    },
                )
            })
            .collect();
        MemLogStore {
            inner: Arc::new(Mutex::new(MemLogInner { segments })),
        }
    }

    /// Total durable bytes across segments (for tests/benchmarks).
    pub fn durable_bytes(&self) -> usize {
        self.inner
            .lock()
            .segments
            .values()
            .map(|s| s.durable.len())
            .sum()
    }
}

impl LogStore for MemLogStore {
    fn segment_ids(&self) -> Result<Vec<u64>> {
        let mut ids: Vec<u64> = self.inner.lock().segments.keys().copied().collect();
        ids.sort_unstable();
        Ok(ids)
    }

    fn create(&mut self, seg: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.segments.contains_key(&seg) {
            return Err(Error::Storage(format!("log segment {seg} already exists")));
        }
        inner.segments.insert(seg, MemSegment::default());
        Ok(())
    }

    fn append(&mut self, seg: u64, bytes: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let s = inner
            .segments
            .get_mut(&seg)
            .ok_or_else(|| Error::Storage(format!("log segment {seg} not found")))?;
        s.pending.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, seg: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let s = inner
            .segments
            .get_mut(&seg)
            .ok_or_else(|| Error::Storage(format!("log segment {seg} not found")))?;
        let pending = std::mem::take(&mut s.pending);
        s.durable.extend_from_slice(&pending);
        Ok(())
    }

    fn read(&self, seg: u64) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        let s = inner
            .segments
            .get(&seg)
            .ok_or_else(|| Error::Storage(format!("log segment {seg} not found")))?;
        let mut out = s.durable.clone();
        out.extend_from_slice(&s.pending);
        Ok(out)
    }

    fn truncate(&mut self, seg: u64, len: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let s = inner
            .segments
            .get_mut(&seg)
            .ok_or_else(|| Error::Storage(format!("log segment {seg} not found")))?;
        s.pending.clear();
        s.durable.truncate(len as usize);
        Ok(())
    }

    fn remove(&mut self, seg: u64) -> Result<()> {
        self.inner.lock().segments.remove(&seg);
        Ok(())
    }
}

/// File-per-segment log store rooted at a directory. Segment `N` lives
/// at `wal-<N>.log`; create/remove/truncate fsync the directory (or the
/// file) so segment metadata survives power loss along with the data.
pub struct FileLogStore {
    root: PathBuf,
}

impl FileLogStore {
    /// Open (creating if needed) a log store at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        if !root.is_dir() {
            fs::create_dir_all(&root)?;
            if let Some(parent) = root.parent().filter(|p| !p.as_os_str().is_empty()) {
                fsync_dir(parent)?;
            }
        }
        Ok(FileLogStore { root })
    }

    fn path(&self, seg: u64) -> PathBuf {
        self.root.join(format!("wal-{seg:016}.log"))
    }
}

impl LogStore for FileLogStore {
    fn segment_ids(&self) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(id) = num.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn create(&mut self, seg: u64) -> Result<()> {
        let path = self.path(seg);
        if path.exists() {
            return Err(Error::Storage(format!("log segment {seg} already exists")));
        }
        fs::File::create(&path)?.sync_all()?;
        fsync_dir(&self.root)
    }

    fn append(&mut self, seg: u64, bytes: &[u8]) -> Result<()> {
        let mut f = fs::OpenOptions::new().append(true).open(self.path(seg))?;
        f.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self, seg: u64) -> Result<()> {
        fs::OpenOptions::new()
            .append(true)
            .open(self.path(seg))?
            .sync_all()?;
        Ok(())
    }

    fn read(&self, seg: u64) -> Result<Vec<u8>> {
        Ok(fs::read(self.path(seg))?)
    }

    fn truncate(&mut self, seg: u64, len: u64) -> Result<()> {
        let f = fs::OpenOptions::new().write(true).open(self.path(seg))?;
        f.set_len(len)?;
        f.sync_all()?;
        Ok(())
    }

    fn remove(&mut self, seg: u64) -> Result<()> {
        match fs::remove_file(self.path(seg)) {
            Ok(()) => fsync_dir(&self.root),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn LogStore) {
        assert!(store.segment_ids().unwrap().is_empty());
        store.create(1).unwrap();
        assert!(store.create(1).is_err());
        store.append(1, b"hello ").unwrap();
        store.append(1, b"world").unwrap();
        store.sync(1).unwrap();
        assert_eq!(store.read(1).unwrap(), b"hello world");
        store.create(2).unwrap();
        assert_eq!(store.segment_ids().unwrap(), vec![1, 2]);
        store.truncate(1, 5).unwrap();
        assert_eq!(store.read(1).unwrap(), b"hello");
        store.remove(1).unwrap();
        store.remove(1).unwrap(); // idempotent
        assert_eq!(store.segment_ids().unwrap(), vec![2]);
    }

    #[test]
    fn mem_store() {
        exercise(&mut MemLogStore::new());
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir().join(format!("cstore-log-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        exercise(&mut FileLogStore::open(&dir).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_crash_image_drops_pending_bytes() {
        let shared = MemLogStore::new();
        let mut store = shared.clone();
        store.create(1).unwrap();
        store.append(1, b"durable").unwrap();
        store.sync(1).unwrap();
        store.append(1, b" lost-on-crash").unwrap();
        // Live handle sees everything; crash image only synced bytes.
        assert_eq!(store.read(1).unwrap(), b"durable lost-on-crash");
        let image = shared.crash_image();
        assert_eq!(image.read(1).unwrap(), b"durable");
    }

    #[test]
    fn file_store_segments_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("cstore-log-reopen-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut s = FileLogStore::open(&dir).unwrap();
            s.create(3).unwrap();
            s.append(3, b"abc").unwrap();
            s.sync(3).unwrap();
        }
        let s = FileLogStore::open(&dir).unwrap();
        assert_eq!(s.segment_ids().unwrap(), vec![3]);
        assert_eq!(s.read(3).unwrap(), b"abc");
        fs::remove_dir_all(&dir).unwrap();
    }
}
