//! Single-column predicates pushed down into scans.
//!
//! The planner lowers WHERE-clause conjuncts of the form
//! `column <op> constant` into [`ColumnPred`]s; the scan evaluates them
//! directly on encoded segment data (see `segment::ColumnSegment::eval_pred`)
//! and uses them for segment elimination (see `stats`).

use std::ops::Bound;

use cstore_common::Value;

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate on an ordering result.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A predicate over one column, against constants.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnPred {
    /// `col <op> value`.
    Cmp { op: CmpOp, value: Value },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between { lo: Value, hi: Value },
    /// `col IN (values)` — values must be distinct.
    InList(Vec<Value>),
    /// `col IS NULL`.
    IsNull,
    /// `col IS NOT NULL`.
    IsNotNull,
}

impl ColumnPred {
    /// Evaluate against a single value (row-mode / delta-store path).
    /// Implements SQL semantics: any comparison with NULL is false
    /// (except IS NULL).
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            ColumnPred::IsNull => v.is_null(),
            ColumnPred::IsNotNull => !v.is_null(),
            _ if v.is_null() => false,
            ColumnPred::Cmp { op, value } => op.eval(v.cmp_sql(value)),
            ColumnPred::Between { lo, hi } => {
                v.cmp_sql(lo) != std::cmp::Ordering::Less
                    && v.cmp_sql(hi) != std::cmp::Ordering::Greater
            }
            // cmp_sql, not eq_storage: IN must agree with Cmp/Between and
            // with segment elimination, which all compare under SQL order
            // (mixed-width integers, float/int coercion).
            ColumnPred::InList(vals) => vals
                .iter()
                .any(|x| v.cmp_sql(x) == std::cmp::Ordering::Equal),
        }
    }

    /// The raw-value interval this predicate selects, if it is an interval
    /// (`Ne` and `InList` are not). Used for segment elimination and
    /// code-space rewriting.
    pub fn as_range(&self) -> Option<(Bound<&Value>, Bound<&Value>)> {
        match self {
            ColumnPred::Cmp { op, value } => Some(match op {
                CmpOp::Eq => (Bound::Included(value), Bound::Included(value)),
                CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(value)),
                CmpOp::Le => (Bound::Unbounded, Bound::Included(value)),
                CmpOp::Gt => (Bound::Excluded(value), Bound::Unbounded),
                CmpOp::Ge => (Bound::Included(value), Bound::Unbounded),
                CmpOp::Ne => return None,
            }),
            ColumnPred::Between { lo, hi } => Some((Bound::Included(lo), Bound::Included(hi))),
            _ => None,
        }
    }

    /// Can any row in a segment with the given min/max/null statistics
    /// match? `false` means the whole segment can be eliminated.
    ///
    /// `min`/`max` are over non-null values and are `None` when the segment
    /// is all-NULL.
    pub fn may_match(&self, min: Option<&Value>, max: Option<&Value>, null_count: usize) -> bool {
        match self {
            ColumnPred::IsNull => null_count > 0,
            ColumnPred::IsNotNull => min.is_some(),
            ColumnPred::Cmp { .. } | ColumnPred::Between { .. } => {
                // An empty BETWEEN range (lo > hi) matches no row; checking
                // the two bounds independently below would let it survive.
                if let ColumnPred::Between { lo, hi } = self {
                    if lo.cmp_sql(hi) == std::cmp::Ordering::Greater {
                        return false;
                    }
                }
                let (Some(min), Some(max)) = (min, max) else {
                    return false; // all NULL: no comparison can match
                };
                match self.as_range() {
                    Some((lo, hi)) => {
                        let lo_ok = match lo {
                            Bound::Unbounded => true,
                            Bound::Included(v) => max.cmp_sql(v) != std::cmp::Ordering::Less,
                            Bound::Excluded(v) => max.cmp_sql(v) == std::cmp::Ordering::Greater,
                        };
                        let hi_ok = match hi {
                            Bound::Unbounded => true,
                            Bound::Included(v) => min.cmp_sql(v) != std::cmp::Ordering::Greater,
                            Bound::Excluded(v) => min.cmp_sql(v) == std::cmp::Ordering::Less,
                        };
                        lo_ok && hi_ok
                    }
                    // Ne: only eliminable when min == max == the constant.
                    None => match self {
                        ColumnPred::Cmp {
                            op: CmpOp::Ne,
                            value,
                        } => !(min.eq_storage(value) && max.eq_storage(value)),
                        _ => true,
                    },
                }
            }
            ColumnPred::InList(vals) => {
                let (Some(min), Some(max)) = (min, max) else {
                    return false;
                };
                vals.iter().any(|v| {
                    min.cmp_sql(v) != std::cmp::Ordering::Greater
                        && max.cmp_sql(v) != std::cmp::Ordering::Less
                })
            }
        }
    }
}

impl std::fmt::Display for ColumnPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnPred::Cmp { op, value } => write!(f, "{op} {value}"),
            ColumnPred::Between { lo, hi } => write!(f, "BETWEEN {lo} AND {hi}"),
            ColumnPred::InList(vs) => {
                write!(f, "IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            ColumnPred::IsNull => write!(f, "IS NULL"),
            ColumnPred::IsNotNull => write!(f, "IS NOT NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_null_semantics() {
        let p = ColumnPred::Cmp {
            op: CmpOp::Eq,
            value: Value::Int64(5),
        };
        assert!(!p.matches(&Value::Null));
        assert!(p.matches(&Value::Int64(5)));
        assert!(ColumnPred::IsNull.matches(&Value::Null));
        assert!(!ColumnPred::IsNotNull.matches(&Value::Null));
    }

    #[test]
    fn between_is_inclusive() {
        let p = ColumnPred::Between {
            lo: Value::Int64(2),
            hi: Value::Int64(4),
        };
        assert!(p.matches(&Value::Int64(2)));
        assert!(p.matches(&Value::Int64(4)));
        assert!(!p.matches(&Value::Int64(5)));
    }

    #[test]
    fn elimination_range() {
        let p = ColumnPred::Cmp {
            op: CmpOp::Gt,
            value: Value::Int64(100),
        };
        // segment max 100 → x > 100 impossible
        assert!(!p.may_match(Some(&Value::Int64(0)), Some(&Value::Int64(100)), 0));
        assert!(p.may_match(Some(&Value::Int64(0)), Some(&Value::Int64(101)), 0));
    }

    #[test]
    fn elimination_eq_and_ne() {
        let eq = ColumnPred::Cmp {
            op: CmpOp::Eq,
            value: Value::Int64(50),
        };
        assert!(eq.may_match(Some(&Value::Int64(0)), Some(&Value::Int64(100)), 0));
        assert!(!eq.may_match(Some(&Value::Int64(60)), Some(&Value::Int64(100)), 0));
        let ne = ColumnPred::Cmp {
            op: CmpOp::Ne,
            value: Value::Int64(7),
        };
        // constant segment of all-7s: x <> 7 eliminable
        assert!(!ne.may_match(Some(&Value::Int64(7)), Some(&Value::Int64(7)), 0));
        assert!(ne.may_match(Some(&Value::Int64(7)), Some(&Value::Int64(8)), 0));
    }

    #[test]
    fn elimination_all_null_segment() {
        let p = ColumnPred::Cmp {
            op: CmpOp::Eq,
            value: Value::Int64(1),
        };
        assert!(!p.may_match(None, None, 100));
        assert!(ColumnPred::IsNull.may_match(None, None, 100));
        assert!(!ColumnPred::IsNotNull.may_match(None, None, 100));
    }

    #[test]
    fn elimination_in_list() {
        let p = ColumnPred::InList(vec![Value::Int64(5), Value::Int64(500)]);
        assert!(p.may_match(Some(&Value::Int64(0)), Some(&Value::Int64(10)), 0));
        assert!(!p.may_match(Some(&Value::Int64(20)), Some(&Value::Int64(400)), 0));
    }

    #[test]
    fn in_list_uses_sql_comparison_across_types() {
        // Int32(5) and Int64(5) are SQL-equal but distinct storage values;
        // IN must agree with `=` (which compares via cmp_sql).
        let in_list = ColumnPred::InList(vec![Value::Int64(5), Value::Int64(9)]);
        let eq = ColumnPred::Cmp {
            op: CmpOp::Eq,
            value: Value::Int64(5),
        };
        for v in [
            Value::Int32(5),
            Value::Int64(5),
            Value::Float64(5.0),
            Value::Int32(6),
            Value::Null,
        ] {
            assert_eq!(
                in_list.matches(&v),
                eq.matches(&v),
                "IN and = disagree on {v:?}"
            );
        }
        // And with the elimination path: a segment of Int32s must not be
        // eliminated for an Int64 IN-list probe that falls in range.
        assert!(in_list.may_match(Some(&Value::Int32(0)), Some(&Value::Int32(10)), 0));
    }

    #[test]
    fn empty_between_range_is_eliminated() {
        let p = ColumnPred::Between {
            lo: Value::Int64(10),
            hi: Value::Int64(5),
        };
        // Pre-fix: both bound checks pass independently and the segment
        // survives even though no row can match.
        assert!(!p.may_match(Some(&Value::Int64(0)), Some(&Value::Int64(100)), 0));
        // matches/may_match agreement: if may_match says "cannot match",
        // matches must be false for every value in the segment's range.
        for v in 0..100 {
            assert!(!p.matches(&Value::Int64(v)));
        }
    }

    #[test]
    fn flip_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }
}
