//! Vertipaq-style row reordering.
//!
//! Within a row group, row order is free — the engine may permute rows
//! before encoding to lengthen runs and shrink RLE output. SQL Server's
//! encoder (inherited from Vertipaq/Analysis Services) searches for a good
//! ordering; the standard, well-performing approximation implemented here
//! sorts rows lexicographically with columns keyed in ascending-cardinality
//! order: the lowest-cardinality column becomes one giant run per value,
//! the next column long runs within those, and so on.

use cstore_common::Value;

/// Column key order for [`apply_lexicographic`]: ascending distinct count
/// (ties broken by column index for determinism).
pub fn cardinality_ascending_order(columns: &[Vec<Value>]) -> Vec<usize> {
    let mut cards: Vec<(usize, usize)> = columns
        .iter()
        .enumerate()
        .map(|(i, col)| (distinct_estimate(col), i))
        .collect();
    cards.sort();
    cards.into_iter().map(|(_, i)| i).collect()
}

/// Exact distinct count (cheap enough at row-group scale: sort of refs).
fn distinct_estimate(col: &[Value]) -> usize {
    let mut refs: Vec<&Value> = col.iter().collect();
    refs.sort_unstable_by(|a, b| a.cmp_sql(b));
    refs.dedup_by(|a, b| a.eq_storage(b));
    refs.len()
}

/// Sort all columns in place by the lexicographic row order over the key
/// columns `keys` (first key is most significant).
pub fn apply_lexicographic(columns: &mut [Vec<Value>], keys: &[usize]) {
    let n = columns.first().map_or(0, |c| c.len());
    if n <= 1 || keys.is_empty() {
        return;
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| {
        for &k in keys {
            let ord = columns[k][a as usize].cmp_sql(&columns[k][b as usize]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    for col in columns.iter_mut() {
        let mut sorted = Vec::with_capacity(n);
        for &i in &perm {
            sorted.push(col[i as usize].clone());
        }
        *col = sorted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&x| Value::Int64(x)).collect()
    }

    #[test]
    fn cardinality_order_sorts_low_first() {
        let cols = vec![
            ints(&[1, 2, 3, 4, 5, 6]), // card 6
            ints(&[1, 1, 1, 2, 2, 2]), // card 2
            ints(&[1, 2, 1, 2, 3, 3]), // card 3
        ];
        assert_eq!(cardinality_ascending_order(&cols), vec![1, 2, 0]);
    }

    #[test]
    fn lexicographic_sort_keeps_rows_together() {
        let mut cols = vec![ints(&[2, 1, 2, 1]), ints(&[10, 20, 30, 40])];
        apply_lexicographic(&mut cols, &[0, 1]);
        assert_eq!(cols[0], ints(&[1, 1, 2, 2]));
        assert_eq!(cols[1], ints(&[20, 40, 10, 30]));
    }

    #[test]
    fn rows_stay_paired() {
        // Whatever the permutation, (a, b) pairs must be preserved.
        let a: Vec<i64> = (0..100).map(|i| (i * 13) % 7).collect();
        let b: Vec<i64> = (0..100).map(|i| i).collect();
        let pairs_before: std::collections::BTreeSet<(i64, i64)> =
            a.iter().zip(b.iter()).map(|(&x, &y)| (x, y)).collect();
        let mut cols = vec![ints(&a), ints(&b)];
        let order = cardinality_ascending_order(&cols);
        apply_lexicographic(&mut cols, &order);
        let pairs_after: std::collections::BTreeSet<(i64, i64)> = cols[0]
            .iter()
            .zip(cols[1].iter())
            .map(|(x, y)| (x.as_i64().unwrap(), y.as_i64().unwrap()))
            .collect();
        assert_eq!(pairs_before, pairs_after);
    }

    #[test]
    fn empty_and_single_row_are_noops() {
        let mut empty: Vec<Vec<Value>> = vec![vec![], vec![]];
        apply_lexicographic(&mut empty, &[0]);
        assert!(empty[0].is_empty());
        let mut one = vec![ints(&[5]), ints(&[6])];
        apply_lexicographic(&mut one, &[1, 0]);
        assert_eq!(one[0], ints(&[5]));
    }
}
