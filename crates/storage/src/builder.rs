//! Encoding pipeline: raw column values → [`ColumnSegment`]s → a
//! [`CompressedRowGroup`].
//!
//! The encoder mirrors SQL Server's index build:
//!
//! 1. optionally **reorder rows** to lengthen runs (see [`crate::reorder`]);
//! 2. per column, pick the **primary encoding** (dictionary vs value-based)
//!    by estimated encoded size;
//! 3. pick the **payload compression** (RLE vs bit packing), again by size;
//! 4. record min/max/null statistics in the segment metadata.

use std::sync::Arc;

use cstore_common::{Bitmap, DataType, Error, Result, Row, RowGroupId, Schema, Value};

use crate::encode::{bits_needed, Dictionary, PackedInts, RleVec, ValueEncoding};
use crate::reorder;
use crate::rowgroup::CompressedRowGroup;
use crate::segment::{ColumnSegment, Payload};

/// Row-reordering policy applied before encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SortMode {
    /// Keep arrival order.
    None,
    /// Greedy Vertipaq-style ordering: sort rows lexicographically by
    /// columns in ascending-cardinality order (long runs in the
    /// low-cardinality columns, good runs in the rest).
    #[default]
    Auto,
    /// Sort by these column indices, in order (e.g. the date column of a
    /// fact table, to maximize segment elimination on date predicates).
    Columns(Vec<usize>),
}

/// Builds one compressed row group from row-wise input.
pub struct RowGroupBuilder {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    sort: SortMode,
    max_rows: usize,
}

/// Default maximum rows per row group (the paper's row groups hold about one
/// million rows).
pub const DEFAULT_MAX_ROWGROUP_ROWS: usize = 1 << 20;

impl RowGroupBuilder {
    pub fn new(schema: Schema, sort: SortMode) -> Self {
        let n = schema.len();
        RowGroupBuilder {
            schema,
            columns: (0..n).map(|_| Vec::new()).collect(),
            sort,
            max_rows: DEFAULT_MAX_ROWGROUP_ROWS,
        }
    }

    /// Override the row-group capacity (used by tests and benchmarks).
    pub fn with_max_rows(mut self, max_rows: usize) -> Self {
        self.max_rows = max_rows;
        self
    }

    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    pub fn is_full(&self) -> bool {
        self.n_rows() >= self.max_rows
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append one row (validated against the schema).
    pub fn push_row(&mut self, row: &Row) -> Result<()> {
        self.schema.check_row(row)?;
        for (col, v) in self.columns.iter_mut().zip(row.values()) {
            col.push(v.clone());
        }
        Ok(())
    }

    /// Append a column-wise chunk (columns must be equal length and match
    /// the schema's types; per-value validation is skipped on this fast
    /// path — the caller is the bulk loader which validated upstream).
    pub fn push_columns(&mut self, cols: Vec<Vec<Value>>) -> Result<()> {
        if cols.len() != self.columns.len() {
            return Err(Error::Type(format!(
                "chunk has {} columns, schema has {}",
                cols.len(),
                self.columns.len()
            )));
        }
        let n = cols.first().map_or(0, |c| c.len());
        if cols.iter().any(|c| c.len() != n) {
            return Err(Error::Type("ragged column chunk".into()));
        }
        for (dst, src) in self.columns.iter_mut().zip(cols) {
            dst.extend(src);
        }
        Ok(())
    }

    /// Encode everything accumulated so far into a compressed row group.
    ///
    /// `shared_dicts[i]`, when present, is a candidate global dictionary for
    /// column `i`; it is used iff it covers the column's values (SQL
    /// Server's primary-dictionary reuse).
    pub fn finish(
        self,
        id: RowGroupId,
        shared_dicts: &[Option<Arc<Dictionary>>],
    ) -> Result<CompressedRowGroup> {
        let mut columns = self.columns;
        match &self.sort {
            SortMode::None => {}
            SortMode::Auto => {
                let order = reorder::cardinality_ascending_order(&columns);
                reorder::apply_lexicographic(&mut columns, &order);
            }
            SortMode::Columns(keys) => {
                reorder::apply_lexicographic(&mut columns, keys);
            }
        }
        let mut segments = Vec::with_capacity(columns.len());
        for (i, col) in columns.into_iter().enumerate() {
            let shared = shared_dicts.get(i).and_then(|d| d.as_ref());
            let seg = encode_column(self.schema.field(i).data_type, &col, shared)?;
            segments.push(seg);
        }
        Ok(CompressedRowGroup::new(id, self.schema, segments))
    }
}

/// Encoding-selection policy. `Auto` (the engine's behavior) picks the
/// smaller option at each decision point; the forced variants exist for
/// the ablation study quantifying what per-segment selection buys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EncodingPolicy {
    /// Choose dictionary vs value encoding and RLE vs bit packing by
    /// estimated size (production behavior).
    #[default]
    Auto,
    /// Always RLE payloads.
    RleOnly,
    /// Always bit-packed payloads.
    BitPackOnly,
    /// Never dictionary-encode integer columns (value encoding only;
    /// strings/floats still need dictionaries).
    NoIntDictionary,
}

/// Encode one column's values into a segment. `shared_dict` is an optional
/// global dictionary reused when it covers the values (strings only).
pub fn encode_column(
    data_type: DataType,
    values: &[Value],
    shared_dict: Option<&Arc<Dictionary>>,
) -> Result<ColumnSegment> {
    encode_column_with_policy(data_type, values, shared_dict, EncodingPolicy::Auto)
}

/// [`encode_column`] with an explicit [`EncodingPolicy`] (ablation entry
/// point).
pub fn encode_column_with_policy(
    data_type: DataType,
    values: &[Value],
    shared_dict: Option<&Arc<Dictionary>>,
    policy: EncodingPolicy,
) -> Result<ColumnSegment> {
    let _span = cstore_common::trace::global().span("segment.encode");
    let n = values.len();
    // NULL bitmap.
    let mut nulls: Option<Bitmap> = None;
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            nulls.get_or_insert_with(|| Bitmap::zeros(n)).set(i);
        } else if !v.fits(data_type) {
            return Err(Error::Type(format!(
                "value {v:?} does not fit column type {data_type}"
            )));
        }
    }

    match data_type {
        DataType::Utf8 => encode_strings(values, n, nulls, shared_dict, policy),
        DataType::Float64 => encode_floats(values, n, nulls, policy),
        _ => encode_integers(data_type, values, n, nulls, policy),
    }
}

fn encode_strings(
    values: &[Value],
    n: usize,
    nulls: Option<Bitmap>,
    shared_dict: Option<&Arc<Dictionary>>,
    policy: EncodingPolicy,
) -> Result<ColumnSegment> {
    // Reuse the shared (global) dictionary iff it covers all values.
    let dict: Arc<Dictionary> = match shared_dict {
        Some(d)
            if values
                .iter()
                .filter(|v| !v.is_null())
                .all(|v| d.code_of(v).is_some()) =>
        {
            d.clone()
        }
        _ => Arc::new(Dictionary::build_str(
            values.iter().filter_map(|v| v.as_str()),
        )),
    };
    let codes: Vec<u64> = values
        .iter()
        .map(|v| {
            if v.is_null() {
                0
            } else {
                // lint: allow(unwrap) — the dictionary was built from
                // exactly these values a few lines above
                dict.code_of(v).expect("dictionary covers values") as u64
            }
        })
        .collect();
    let (min, max) = string_min_max(values);
    let max_code = dict.len().saturating_sub(1) as u64;
    let payload = choose_payload(&codes, bits_needed(max_code), policy);
    Ok(ColumnSegment::assemble(
        DataType::Utf8,
        n as u32,
        nulls,
        min,
        max,
        payload,
        Some(dict),
        None,
        max_code,
    ))
}

fn encode_floats(
    values: &[Value],
    n: usize,
    nulls: Option<Bitmap>,
    policy: EncodingPolicy,
) -> Result<ColumnSegment> {
    let dict = Arc::new(Dictionary::build_f64(values.iter().filter_map(|v| {
        if let Value::Float64(f) = v {
            Some(*f)
        } else {
            None
        }
    })));
    let codes: Vec<u64> = values
        .iter()
        .map(|v| {
            if v.is_null() {
                0
            } else {
                // lint: allow(unwrap) — the dictionary was built from
                // exactly these values a few lines above
                dict.code_of(v).expect("dictionary covers values") as u64
            }
        })
        .collect();
    let mut min = None;
    let mut max = None;
    if !dict.is_empty() {
        min = Some(Value::Float64(dict.f64_at(0)));
        max = Some(Value::Float64(dict.f64_at(dict.len() as u32 - 1)));
    }
    let max_code = dict.len().saturating_sub(1) as u64;
    let payload = choose_payload(&codes, bits_needed(max_code), policy);
    Ok(ColumnSegment::assemble(
        DataType::Float64,
        n as u32,
        nulls,
        min,
        max,
        payload,
        Some(dict),
        None,
        max_code,
    ))
}

fn encode_integers(
    data_type: DataType,
    values: &[Value],
    n: usize,
    nulls: Option<Bitmap>,
    policy: EncodingPolicy,
) -> Result<ColumnSegment> {
    let raw: Vec<i64> = values.iter().map(|v| v.as_i64().unwrap_or(0)).collect();
    let non_null: Vec<i64> = values.iter().filter_map(|v| v.as_i64()).collect();

    let (venc, venc_max_code) = ValueEncoding::analyze(&non_null);

    // Distinct values, for the dictionary alternative.
    let mut distinct = non_null.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let dict_max_code = distinct.len().saturating_sub(1) as u64;

    // Run structure is identical under both primary encodings (both are
    // monotone injections), so compare sizes on shared estimates.
    let runs = {
        // Count runs over (null?, raw) pairs — null positions break runs the
        // same way under both encodings because both assign them code 0.
        let mut count = 0usize;
        let mut prev: Option<(bool, i64)> = None;
        for (i, v) in values.iter().enumerate() {
            let cur = (v.is_null(), if v.is_null() { 0 } else { raw[i] });
            if prev != Some(cur) {
                count += 1;
                prev = Some(cur);
            }
        }
        count
    };
    let venc_bytes = payload_estimate(n, runs, bits_needed(venc_max_code));
    let dict_bytes = payload_estimate(n, runs, bits_needed(dict_max_code)) + distinct.len() * 8;

    let (min, max) = match (non_null.iter().min(), non_null.iter().max()) {
        (Some(&lo), Some(&hi)) => (
            Some(Value::from_i64(data_type, lo)),
            Some(Value::from_i64(data_type, hi)),
        ),
        _ => (None, None),
    };

    let use_dict = dict_bytes < venc_bytes && policy != EncodingPolicy::NoIntDictionary;
    if use_dict {
        let dict = Arc::new(Dictionary::I64(distinct));
        let codes: Vec<u64> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if v.is_null() {
                    0
                } else {
                    match dict.as_ref() {
                        // lint: allow(unwrap) — `distinct` contains every
                        // raw value by construction
                        Dictionary::I64(d) => d.binary_search(&raw[i]).unwrap() as u64,
                        // lint: allow(panic) — `dict` was built as I64 a few
                        // lines above
                        _ => unreachable!("dict built as I64 above"),
                    }
                }
            })
            .collect();
        let payload = choose_payload(&codes, bits_needed(dict_max_code), policy);
        Ok(ColumnSegment::assemble(
            data_type,
            n as u32,
            nulls,
            min,
            max,
            payload,
            Some(dict),
            None,
            dict_max_code,
        ))
    } else {
        let codes: Vec<u64> = values
            .iter()
            .enumerate()
            .map(|(i, v)| if v.is_null() { 0 } else { venc.encode(raw[i]) })
            .collect();
        let payload = choose_payload(&codes, bits_needed(venc_max_code), policy);
        Ok(ColumnSegment::assemble(
            data_type,
            n as u32,
            nulls,
            min,
            max,
            payload,
            None,
            Some(venc),
            venc_max_code,
        ))
    }
}

fn string_min_max(values: &[Value]) -> (Option<Value>, Option<Value>) {
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    for v in values.iter().filter(|v| !v.is_null()) {
        if min.is_none_or(|m| v.cmp_sql(m) == std::cmp::Ordering::Less) {
            min = Some(v);
        }
        if max.is_none_or(|m| v.cmp_sql(m) == std::cmp::Ordering::Greater) {
            max = Some(v);
        }
    }
    (min.cloned(), max.cloned())
}

/// Size of the cheaper payload for `n` codes with `runs` runs at `width`
/// bits, in bytes.
fn payload_estimate(n: usize, runs: usize, width: u32) -> usize {
    RleVec::estimate_bytes(runs).min(PackedInts::estimate_bytes(n, width))
}

/// Build the payload for the given codes per the policy (`Auto` picks
/// the cheaper of RLE and bit packing).
fn choose_payload(codes: &[u64], width: u32, policy: EncodingPolicy) -> Payload {
    match policy {
        EncodingPolicy::RleOnly => return Payload::Rle(RleVec::from_codes(codes)),
        EncodingPolicy::BitPackOnly => {
            return Payload::Packed(PackedInts::from_codes_with_width(codes, width))
        }
        EncodingPolicy::Auto | EncodingPolicy::NoIntDictionary => {}
    }
    let runs = RleVec::count_runs(codes);
    if RleVec::estimate_bytes(runs) < PackedInts::estimate_bytes(codes.len(), width) {
        Payload::Rle(RleVec::from_codes(codes))
    } else {
        Payload::Packed(PackedInts::from_codes_with_width(codes, width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{PayloadKind, PrimaryEncoding};
    use cstore_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::nullable("s", DataType::Utf8),
        ])
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = RowGroupBuilder::new(schema(), SortMode::None);
        for i in 0..100i64 {
            b.push_row(&Row::new(vec![
                Value::Int64(i),
                Value::str(format!("name{}", i % 5)),
            ]))
            .unwrap();
        }
        let rg = b.finish(RowGroupId(0), &[None, None]).unwrap();
        assert_eq!(rg.n_rows(), 100);
        assert_eq!(rg.segment(0).value_at(42), Value::Int64(42));
        assert_eq!(rg.segment(1).value_at(42), Value::str("name2"));
    }

    #[test]
    fn rle_chosen_for_runny_data() {
        let vals: Vec<Value> = (0..10_000).map(|i| Value::Int64(i / 1000)).collect();
        let seg = encode_column(DataType::Int64, &vals, None).unwrap();
        assert_eq!(seg.meta.payload, PayloadKind::Rle);
        // 10 runs of 1000 → tiny payload
        assert!(seg.encoded_bytes() < 200, "got {}", seg.encoded_bytes());
    }

    #[test]
    fn bitpack_chosen_for_random_data() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int64((i * 7919) % 997)).collect();
        let seg = encode_column(DataType::Int64, &vals, None).unwrap();
        assert_eq!(seg.meta.payload, PayloadKind::BitPacked);
        // 997 distinct values in 0..997 → 10 bits per value ≈ 1250 bytes
        assert!(seg.encoded_bytes() < 1400, "got {}", seg.encoded_bytes());
    }

    #[test]
    fn dictionary_chosen_for_sparse_ints() {
        // 3 distinct huge values with gcd 1 → value encoding needs ~63
        // bits, dictionary needs 2.
        let vals: Vec<Value> = (0..999)
            .map(|i| Value::Int64([i64::MIN, 1, i64::MAX - 1][i % 3]))
            .collect();
        let seg = encode_column(DataType::Int64, &vals, None).unwrap();
        assert_eq!(seg.meta.primary, PrimaryEncoding::Dictionary);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&seg.value_at(i), v);
        }
    }

    #[test]
    fn value_encoding_chosen_for_dense_ints() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int64(i * 7919)).collect();
        let seg = encode_column(DataType::Int64, &vals, None).unwrap();
        assert_eq!(seg.meta.primary, PrimaryEncoding::ValueBased);
        assert_eq!(seg.value_encoding().unwrap().divisor, 7919);
    }

    #[test]
    fn shared_dictionary_reused_when_covering() {
        let shared = Arc::new(Dictionary::build_str(["a", "b", "c"].into_iter()));
        let vals = vec![Value::str("a"), Value::str("c")];
        let seg = encode_column(DataType::Utf8, &vals, Some(&shared)).unwrap();
        assert!(Arc::ptr_eq(seg.dictionary().unwrap(), &shared));
        // Not covering → new dictionary.
        let vals2 = vec![Value::str("a"), Value::str("z")];
        let seg2 = encode_column(DataType::Utf8, &vals2, Some(&shared)).unwrap();
        assert!(!Arc::ptr_eq(seg2.dictionary().unwrap(), &shared));
        assert_eq!(seg2.value_at(1), Value::str("z"));
    }

    #[test]
    fn empty_column_encodes() {
        let seg = encode_column(DataType::Int64, &[], None).unwrap();
        assert_eq!(seg.row_count(), 0);
        assert_eq!(seg.meta.min, None);
    }

    #[test]
    fn all_null_column_encodes() {
        let vals = vec![Value::Null; 10];
        let seg = encode_column(DataType::Utf8, &vals, None).unwrap();
        assert_eq!(seg.meta.null_count, 10);
        assert_eq!(seg.value_at(3), Value::Null);
    }

    #[test]
    fn auto_sort_improves_compression() {
        // Two columns whose values interleave badly in arrival order.
        let mut rng_vals = Vec::new();
        for i in 0..2000i64 {
            rng_vals.push((i % 7, (i * 31) % 3));
        }
        let schema = Schema::new(vec![
            Field::not_null("a", DataType::Int64),
            Field::not_null("b", DataType::Int64),
        ]);
        let build = |mode: SortMode| {
            let mut b = RowGroupBuilder::new(schema.clone(), mode);
            for &(a, bb) in &rng_vals {
                b.push_row(&Row::new(vec![Value::Int64(a), Value::Int64(bb)]))
                    .unwrap();
            }
            b.finish(RowGroupId(0), &[None, None]).unwrap()
        };
        let unsorted = build(SortMode::None);
        let sorted = build(SortMode::Auto);
        assert!(
            sorted.encoded_bytes() < unsorted.encoded_bytes(),
            "sorted {} vs unsorted {}",
            sorted.encoded_bytes(),
            unsorted.encoded_bytes()
        );
    }

    #[test]
    fn push_columns_validates_shape() {
        let mut b = RowGroupBuilder::new(schema(), SortMode::None);
        assert!(b.push_columns(vec![vec![Value::Int64(1)]]).is_err());
        assert!(b.push_columns(vec![vec![Value::Int64(1)], vec![]]).is_err());
        assert!(b
            .push_columns(vec![vec![Value::Int64(1)], vec![Value::str("x")]])
            .is_ok());
        assert_eq!(b.n_rows(), 1);
    }
}
