//! Property tests on the storage crate's core data structures.

use proptest::prelude::*;

use cstore_common::{Bitmap, DataType, Value};
use cstore_storage::encode::{Dictionary, PackedInts, RleVec};
use cstore_storage::pred::{CmpOp, ColumnPred};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitpack_roundtrips_any_width(
        codes in proptest::collection::vec(any::<u64>(), 0..300),
        width_cap in 1u32..=64,
    ) {
        let mask = if width_cap == 64 { u64::MAX } else { (1 << width_cap) - 1 };
        let codes: Vec<u64> = codes.iter().map(|c| c & mask).collect();
        let p = PackedInts::from_codes(&codes);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        prop_assert_eq!(&out, &codes);
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(p.get(i), c);
        }
    }

    #[test]
    fn rle_roundtrips_and_counts_runs(codes in proptest::collection::vec(0u64..6, 0..300)) {
        let r = RleVec::from_codes(&codes);
        let mut out = Vec::new();
        r.decode_into(&mut out);
        prop_assert_eq!(&out, &codes);
        prop_assert_eq!(r.n_runs(), RleVec::count_runs(&codes));
        // Runs tile the sequence exactly.
        let mut end = 0;
        for (_, s, e) in r.iter_runs() {
            prop_assert_eq!(s, end);
            prop_assert!(e > s);
            end = e;
        }
        prop_assert_eq!(end, codes.len());
    }

    #[test]
    fn bitmap_algebra_laws(
        a in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let ba = Bitmap::from_bools(&a);
        let bb = Bitmap::from_bools(&b);
        // a ∪ ¬a = ones; a ∩ ¬a = zeros.
        let mut u = ba.clone();
        u.union_with(&bb);
        prop_assert!(u.all());
        let mut i = ba.clone();
        i.intersect_with(&bb);
        prop_assert!(!i.any());
        // double negation
        let mut n = ba.clone();
        n.negate();
        n.negate();
        prop_assert_eq!(&n, &ba);
        // subtract self = zeros
        let mut s = ba.clone();
        s.subtract(&ba);
        prop_assert!(!s.any());
        // popcount consistency
        prop_assert_eq!(ba.count_ones() + bb.count_ones(), a.len());
        prop_assert_eq!(ba.iter_ones().count(), ba.count_ones());
    }

    #[test]
    fn dictionary_code_range_matches_naive(
        mut values in proptest::collection::vec(-50i64..50, 1..100),
        lo in -60i64..60,
        span in 0i64..40,
    ) {
        values.sort_unstable();
        values.dedup();
        let dict = Dictionary::build_i64(values.iter().copied());
        let hi = lo + span;
        let range = dict.code_range(
            std::ops::Bound::Included(&Value::Int64(lo)),
            std::ops::Bound::Included(&Value::Int64(hi)),
        );
        let expect: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (lo..=hi).contains(&v))
            .map(|(i, _)| i as u32)
            .collect();
        match range {
            None => prop_assert!(expect.is_empty()),
            Some((a, b)) => {
                prop_assert_eq!(expect.first(), Some(&a));
                prop_assert_eq!(expect.last(), Some(&b));
                prop_assert_eq!(expect.len() as u32, b - a + 1);
            }
        }
    }

    #[test]
    fn elimination_never_false_negative(
        values in proptest::collection::vec(
            prop_oneof![3 => (-100i64..100).prop_map(Value::Int64), 1 => Just(Value::Null)],
            1..150,
        ),
        k in -120i64..120,
        op_idx in 0usize..6,
    ) {
        use cstore_storage::builder::encode_column;
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let pred = ColumnPred::Cmp { op: ops[op_idx], value: Value::Int64(k) };
        let seg = encode_column(DataType::Int64, &values, None).unwrap();
        let any_matches = values.iter().any(|v| !v.is_null() && pred.matches(v));
        if any_matches {
            prop_assert!(
                seg.may_match(&pred),
                "eliminated a segment with matching rows (k={}, op={:?})", k, ops[op_idx]
            );
        }
    }

    #[test]
    fn rowgroup_serialization_roundtrips(
        seed_rows in proptest::collection::vec((any::<i64>(), "[a-c]{0,4}"), 1..120),
        archive in any::<bool>(),
    ) {
        use cstore_common::{Field, Row, RowGroupId, Schema};
        use cstore_storage::builder::{RowGroupBuilder, SortMode};
        use cstore_storage::CompressedRowGroup;
        let schema = Schema::new(vec![
            Field::not_null("a", DataType::Int64),
            Field::not_null("b", DataType::Utf8),
        ]);
        let mut b = RowGroupBuilder::new(schema.clone(), SortMode::Auto);
        for (x, s) in &seed_rows {
            b.push_row(&Row::new(vec![Value::Int64(*x), Value::str(s.as_str())])).unwrap();
        }
        let mut rg = b.finish(RowGroupId(1), &[None, None]).unwrap();
        if archive {
            rg.archive();
        }
        let blob = rg.serialize();
        let back = CompressedRowGroup::deserialize(&blob, schema).unwrap();
        prop_assert_eq!(back.n_rows(), rg.n_rows());
        for t in 0..rg.n_rows() {
            prop_assert_eq!(back.row_values(t).unwrap(), rg.row_values(t).unwrap());
        }
    }
}
