//! Randomized tests on the storage crate's core data structures.
//! Deterministic seeded `Rng` replaces proptest so the suite builds
//! offline.

use cstore_common::testutil::Rng;
use cstore_common::{Bitmap, DataType, Value};
use cstore_storage::encode::{Dictionary, PackedInts, RleVec};
use cstore_storage::pred::{CmpOp, ColumnPred};

#[test]
fn bitpack_roundtrips_any_width() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let width_cap = rng.range_i64(1, 65) as u32;
        let mask = if width_cap == 64 {
            u64::MAX
        } else {
            (1 << width_cap) - 1
        };
        let n = rng.range_usize(0, 300);
        let codes: Vec<u64> = (0..n).map(|_| rng.next_u64() & mask).collect();
        let p = PackedInts::from_codes(&codes);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(&out, &codes, "seed {seed} width {width_cap}");
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(p.get(i), c, "seed {seed} idx {i}");
        }
    }
}

#[test]
fn rle_roundtrips_and_counts_runs() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed ^ 0x41E);
        let n = rng.range_usize(0, 300);
        // Tiny domain → long runs.
        let codes: Vec<u64> = (0..n).map(|_| rng.below(6)).collect();
        let r = RleVec::from_codes(&codes);
        let mut out = Vec::new();
        r.decode_into(&mut out);
        assert_eq!(&out, &codes, "seed {seed}");
        assert_eq!(r.n_runs(), RleVec::count_runs(&codes), "seed {seed}");
        // Runs tile the sequence exactly.
        let mut end = 0;
        for (_, s, e) in r.iter_runs() {
            assert_eq!(s, end, "seed {seed}");
            assert!(e > s, "seed {seed}");
            end = e;
        }
        assert_eq!(end, codes.len(), "seed {seed}");
    }
}

#[test]
fn bitmap_algebra_laws() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed ^ 0xB17);
        let n = rng.range_usize(1, 200);
        let a: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let ba = Bitmap::from_bools(&a);
        let bb = Bitmap::from_bools(&b);
        // a ∪ ¬a = ones; a ∩ ¬a = zeros.
        let mut u = ba.clone();
        u.union_with(&bb);
        assert!(u.all(), "seed {seed}");
        let mut i = ba.clone();
        i.intersect_with(&bb);
        assert!(!i.any(), "seed {seed}");
        // double negation
        let mut neg = ba.clone();
        neg.negate();
        neg.negate();
        assert_eq!(&neg, &ba, "seed {seed}");
        // subtract self = zeros
        let mut s = ba.clone();
        s.subtract(&ba);
        assert!(!s.any(), "seed {seed}");
        // popcount consistency
        assert_eq!(ba.count_ones() + bb.count_ones(), a.len(), "seed {seed}");
        assert_eq!(ba.iter_ones().count(), ba.count_ones(), "seed {seed}");
    }
}

#[test]
fn dictionary_code_range_matches_naive() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed ^ 0xD1C7);
        let n = rng.range_usize(1, 100);
        let mut values: Vec<i64> = (0..n).map(|_| rng.range_i64(-50, 50)).collect();
        values.sort_unstable();
        values.dedup();
        let lo = rng.range_i64(-60, 60);
        let hi = lo + rng.range_i64(0, 40);
        let dict = Dictionary::build_i64(values.iter().copied());
        let range = dict.code_range(
            std::ops::Bound::Included(&Value::Int64(lo)),
            std::ops::Bound::Included(&Value::Int64(hi)),
        );
        let expect: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (lo..=hi).contains(&v))
            .map(|(i, _)| i as u32)
            .collect();
        match range {
            None => assert!(expect.is_empty(), "seed {seed} lo {lo} hi {hi}"),
            Some((a, b)) => {
                assert_eq!(expect.first(), Some(&a), "seed {seed}");
                assert_eq!(expect.last(), Some(&b), "seed {seed}");
                assert_eq!(expect.len() as u32, b - a + 1, "seed {seed}");
            }
        }
    }
}

#[test]
fn elimination_never_false_negative() {
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    for seed in 0..128u64 {
        use cstore_storage::builder::encode_column;
        let mut rng = Rng::new(seed ^ 0xE11);
        let n = rng.range_usize(1, 150);
        let values: Vec<Value> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    Value::Null
                } else {
                    Value::Int64(rng.range_i64(-100, 100))
                }
            })
            .collect();
        let k = rng.range_i64(-120, 120);
        let op = ops[rng.range_usize(0, ops.len())];
        let pred = ColumnPred::Cmp {
            op,
            value: Value::Int64(k),
        };
        let seg = encode_column(DataType::Int64, &values, None).unwrap();
        let any_matches = values.iter().any(|v| !v.is_null() && pred.matches(v));
        if any_matches {
            assert!(
                seg.may_match(&pred),
                "eliminated a segment with matching rows (seed={seed}, k={k}, op={op:?})"
            );
        }
    }
}

#[test]
fn rowgroup_serialization_roundtrips() {
    use cstore_common::{Field, Row, RowGroupId, Schema};
    use cstore_storage::builder::{RowGroupBuilder, SortMode};
    use cstore_storage::CompressedRowGroup;
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0x56E1);
        let schema = Schema::new(vec![
            Field::not_null("a", DataType::Int64),
            Field::not_null("b", DataType::Utf8),
        ]);
        let n = rng.range_usize(1, 120);
        let mut b = RowGroupBuilder::new(schema.clone(), SortMode::Auto);
        for _ in 0..n {
            let x = rng.next_u64() as i64;
            let len = rng.range_usize(0, 5);
            let s: String = (0..len)
                .map(|_| ['a', 'b', 'c'][rng.range_usize(0, 3)])
                .collect();
            b.push_row(&Row::new(vec![Value::Int64(x), Value::str(s)]))
                .unwrap();
        }
        let mut rg = b.finish(RowGroupId(1), &[None, None]).unwrap();
        if rng.gen_bool(0.5) {
            rg.archive().unwrap();
        }
        let blob = rg.serialize().unwrap();
        let back = CompressedRowGroup::deserialize(&blob, schema).unwrap();
        assert_eq!(back.n_rows(), rg.n_rows(), "seed {seed}");
        for t in 0..rg.n_rows() {
            assert_eq!(
                back.row_values(t).unwrap(),
                rg.row_values(t).unwrap(),
                "seed {seed} row {t}"
            );
        }
    }
}
