//! A B+tree keyed by `u64`.
//!
//! Delta stores in SQL Server's updatable columnstore are B-trees keyed by
//! a row locator. This is that substrate: a textbook B+tree with node
//! splitting on insert and borrow/merge rebalancing on remove, plus an
//! in-order range iterator for scans. Values live only in leaves.

/// Maximum keys per node; splits happen when a node exceeds this.
const MAX_KEYS: usize = 32;
/// Minimum keys per non-root node; merges/borrows restore this on removal.
const MIN_KEYS: usize = MAX_KEYS / 2;

enum Node<V> {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<V>,
    },
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i + 1]`.
        keys: Vec<u64>,
        children: Vec<Node<V>>,
    },
}

impl<V> Node<V> {
    fn n_keys(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }

    /// First key in the subtree (used to fix separator keys).
    fn min_key(&self) -> u64 {
        match self {
            Node::Leaf { keys, .. } => keys[0],
            Node::Internal { children, .. } => children[0].min_key(),
        }
    }
}

/// A B+tree from `u64` keys to values.
pub struct BTree<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BTree<V> {
    fn default() -> Self {
        BTree::new()
    }
}

impl<V> BTree<V> {
    pub fn new() -> Self {
        BTree {
            root: Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            },
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match Self::insert_rec(&mut self.root, key, value) {
            InsertResult::Replaced(old) => Some(old),
            InsertResult::Inserted => {
                self.len += 1;
                None
            }
            InsertResult::Split(sep, right) => {
                self.len += 1;
                // Grow the tree by one level.
                let old_root = std::mem::replace(
                    &mut self.root,
                    Node::Internal {
                        keys: Vec::new(),
                        children: Vec::new(),
                    },
                );
                if let Node::Internal { keys, children } = &mut self.root {
                    keys.push(sep);
                    children.push(old_root);
                    children.push(right);
                }
                None
            }
        }
    }

    fn insert_rec(node: &mut Node<V>, key: u64, value: V) -> InsertResult<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => InsertResult::Replaced(std::mem::replace(&mut vals[i], value)),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0];
                        InsertResult::Split(
                            sep,
                            Node::Leaf {
                                keys: right_keys,
                                vals: right_vals,
                            },
                        )
                    } else {
                        InsertResult::Inserted
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                match Self::insert_rec(&mut children[idx], key, value) {
                    InsertResult::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > MAX_KEYS {
                            let mid = keys.len() / 2;
                            // keys[mid] moves up as the separator.
                            let sep_up = keys[mid];
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop();
                            let right_children = children.split_off(mid + 1);
                            InsertResult::Split(
                                sep_up,
                                Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            )
                        } else {
                            InsertResult::Inserted
                        }
                    }
                    other => other,
                }
            }
        }
    }

    pub fn get(&self, key: u64) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    node = &children[keys.partition_point(|&k| k <= key)];
                }
            }
        }
    }

    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Shrink the tree when the root is an internal node with a
            // single child.
            if let Node::Internal { children, .. } = &mut self.root {
                if children.len() == 1 {
                    if let Some(child) = children.pop() {
                        self.root = child;
                    }
                }
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: u64) -> Option<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let removed = Self::remove_rec(&mut children[idx], key)?;
                if children[idx].n_keys() < MIN_KEYS {
                    Self::rebalance(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Restore the B+tree invariant after `children[idx]` underflowed.
    fn rebalance(keys: &mut Vec<u64>, children: &mut Vec<Node<V>>, idx: usize) {
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].n_keys() > MIN_KEYS {
            let (left, right) = children.split_at_mut(idx);
            let left = &mut left[idx - 1];
            let right = &mut right[0];
            match (left, right) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
                    // lint: allow(unwrap) — donor sibling has > MIN_KEYS
                    // entries, checked by the borrow guard above
                    rk.insert(0, lk.pop().unwrap());
                    // lint: allow(unwrap) — same donor-occupancy guard
                    rv.insert(0, lv.pop().unwrap());
                    keys[idx - 1] = rk[0];
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    // lint: allow(unwrap) — donor sibling has > MIN_KEYS
                    // entries, checked by the borrow guard above
                    let moved_child = lc.pop().unwrap();
                    // lint: allow(unwrap) — same donor-occupancy guard
                    let sep = std::mem::replace(&mut keys[idx - 1], lk.pop().unwrap());
                    rk.insert(0, sep);
                    rc.insert(0, moved_child);
                }
                // lint: allow(panic) — B+tree siblings at one height are
                // both leaves or both internal by construction
                _ => unreachable!("siblings at the same height share a shape"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].n_keys() > MIN_KEYS {
            let (left, right) = children.split_at_mut(idx + 1);
            let left = &mut left[idx];
            let right = &mut right[0];
            match (left, right) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
                    lk.push(rk.remove(0));
                    lv.push(rv.remove(0));
                    keys[idx] = rk[0];
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                    lk.push(sep);
                    lc.push(rc.remove(0));
                }
                // lint: allow(panic) — B+tree siblings at one height are
                // both leaves or both internal by construction
                _ => unreachable!("siblings at the same height share a shape"),
            }
            return;
        }
        // Merge with a sibling (prefer left).
        let merge_left = if idx > 0 { idx - 1 } else { idx };
        let sep = keys.remove(merge_left);
        let right = children.remove(merge_left + 1);
        let left = &mut children[merge_left];
        match (left, right) {
            (
                Node::Leaf { keys: lk, vals: lv },
                Node::Leaf {
                    keys: mut rk,
                    vals: mut rv,
                },
            ) => {
                lk.append(&mut rk);
                lv.append(&mut rv);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                lk.push(sep);
                lk.append(&mut rk);
                lc.append(&mut rc);
            }
            // lint: allow(panic) — B+tree siblings at one height are
            // both leaves or both internal by construction
            _ => unreachable!("siblings at the same height share a shape"),
        }
    }

    /// In-order iterator over `(key, &value)` pairs with `key >= from`.
    pub fn range_from(&self, from: u64) -> RangeIter<'_, V> {
        let mut stack = Vec::new();
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, .. } => {
                    let pos = keys.partition_point(|&k| k < from);
                    stack.push((node, pos));
                    break;
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= from);
                    stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
        RangeIter { stack }
    }

    /// In-order iterator over all `(key, &value)` pairs.
    pub fn iter(&self) -> RangeIter<'_, V> {
        self.range_from(0)
    }

    /// Smallest key, if any.
    pub fn first_key(&self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(self.root.min_key())
        }
    }

    /// Depth of the tree (1 = just a leaf). Exposed for tests/diagnostics.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }
}

enum InsertResult<V> {
    Inserted,
    Replaced(V),
    /// The child split: `(separator key, new right node)`.
    Split(u64, Node<V>),
}

/// In-order iterator (see [`BTree::range_from`]).
pub struct RangeIter<'a, V> {
    /// Path of `(node, next child/entry index)` from root to current leaf.
    stack: Vec<(&'a Node<V>, usize)>,
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<(u64, &'a V)> {
        loop {
            let (node, pos) = self.stack.last_mut()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if *pos < keys.len() {
                        let item = (keys[*pos], &vals[*pos]);
                        *pos += 1;
                        return Some(item);
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if *pos < children.len() {
                        let child = &children[*pos];
                        *pos += 1;
                        // Descend to the leftmost leaf of this child.
                        let mut n = child;
                        loop {
                            match n {
                                Node::Leaf { .. } => {
                                    self.stack.push((n, 0));
                                    break;
                                }
                                Node::Internal { children, .. } => {
                                    self.stack.push((n, 1));
                                    n = &children[0];
                                }
                            }
                        }
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_sequential() {
        let mut t = BTree::new();
        for i in 0..10_000u64 {
            assert_eq!(t.insert(i, i * 2), None);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.depth() > 1, "tree should have split");
        for i in 0..10_000u64 {
            assert_eq!(t.get(i), Some(&(i * 2)));
        }
        assert_eq!(t.get(10_000), None);
    }

    #[test]
    fn insert_replaces() {
        let mut t = BTree::new();
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(5, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some(&"b"));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = BTree::new();
        // Insert in a scrambled order.
        for i in 0..5000u64 {
            t.insert((i * 2654435761) % 5000, ());
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn range_from_starts_at_bound() {
        let mut t = BTree::new();
        for i in (0..1000u64).step_by(10) {
            t.insert(i, i);
        }
        let got: Vec<u64> = t.range_from(495).map(|(k, _)| k).take(3).collect();
        assert_eq!(got, vec![500, 510, 520]);
        let got: Vec<u64> = t.range_from(500).map(|(k, _)| k).take(2).collect();
        assert_eq!(got, vec![500, 510]);
        assert_eq!(t.range_from(10_000).count(), 0);
    }

    #[test]
    fn remove_everything_both_orders() {
        for ascending in [true, false] {
            let mut t = BTree::new();
            let n = 3000u64;
            for i in 0..n {
                t.insert(i, i);
            }
            let order: Vec<u64> = if ascending {
                (0..n).collect()
            } else {
                (0..n).rev().collect()
            };
            for (removed, &k) in order.iter().enumerate() {
                assert_eq!(t.remove(k), Some(k), "removing {k}");
                assert_eq!(t.len(), n as usize - removed - 1);
            }
            assert!(t.is_empty());
            assert_eq!(t.depth(), 1, "tree should have collapsed");
        }
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t = BTree::new();
        t.insert(1, ());
        assert_eq!(t.remove(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mirrors_btreemap_under_mixed_workload() {
        // Deterministic pseudo-random workload checked against std's map.
        let mut t: BTree<u64> = BTree::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 88172645463325252;
        for step in 0..30_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 500;
            match step % 3 {
                0 | 1 => {
                    assert_eq!(t.insert(key, step), m.insert(key, step));
                }
                _ => {
                    assert_eq!(t.remove(key), m.remove(&key));
                }
            }
        }
        assert_eq!(t.len(), m.len());
        let t_items: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
        let m_items: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(t_items, m_items);
    }

    #[test]
    fn first_key() {
        let mut t = BTree::new();
        assert_eq!(t.first_key(), None);
        t.insert(42, ());
        t.insert(7, ());
        assert_eq!(t.first_key(), Some(7));
    }
}
