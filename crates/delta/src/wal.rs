//! Write-ahead logging for delta stores, with pipelined group commit
//! and replay.
//!
//! The paper's trickle path inherits durability from SQL Server's fully
//! logged row-store engine: every delta-store insert and delete-bitmap
//! mark is WAL-protected, so a crash never loses a committed row. This
//! module closes the same gap for the reproduction. Mutations append
//! CRC32-framed records to an append-only, segmented log
//! ([`cstore_storage::log::LogStore`]); commit is *pipelined group
//! commit* — committers buffer frames under a short mutex and park,
//! while a dedicated log-writer thread drains the buffer, appends and
//! fsyncs each stolen batch, and wakes the committers whose LSNs it
//! made durable. Because committers never do IO themselves, batch N+1
//! accumulates while batch N is still fsyncing (and is stolen the
//! moment the fsync completes — flushes themselves are serialized so
//! batches reach storage in LSN order). On open, [`Wal::open`] replays the log into the freshly
//! loaded tables: records at or below a table's persisted LSN watermark
//! are skipped (the generation-stamped save already contains them), a
//! torn tail is truncated at the first bad frame, and — in degraded
//! mode — an unreadable interior segment is quarantined while later
//! segments still apply.
//!
//! ## Durability modes
//!
//! `SET wal_sync = off|group|strict` selects how much of that pipeline
//! a commit waits for (see `DESIGN.md` §8 for the loss-window table):
//!
//! - `off` — the commit is acknowledged as soon as its frames are
//!   buffered; the writer thread flushes behind the caller. A crash can
//!   lose the buffered tail.
//! - `group` (default) — the commit parks until the writer thread has
//!   fsynced its LSN; acknowledged means durable.
//! - `strict` — as `group`, but the committing thread flushes the
//!   buffer itself (leader-style) instead of handing off, trading
//!   batching opportunity for the lowest acknowledge latency.
//!
//! ## Frame format
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload]
//! payload = [lsn: u64][record_type: u8][record body]
//! ```
//!
//! Record types: `1` Insert, `2` Delete, `3` RowGroupSealed (informational
//! marker from the tuple mover), `4` Checkpoint (generation + per-table
//! LSN watermarks; written after a successful save, drives segment
//! retirement), `5` InsertBatch (one frame covering every row of a
//! multi-row statement or bulk-load chunk, so ingest pays one commit
//! obligation per statement instead of one per row). A Delete record
//! carries the full row values as well as the `RowId`: row ids are not
//! stable across replay (re-inserted delta rows get fresh ids,
//! mover-built row groups vanish with the crash), so replay falls back
//! to delete-by-value when the logged id no longer resolves.
//!
//! Multi-statement transactions add framing records: `6` TxnBegin,
//! `7` TxnCommit, `8` TxnAbort, and `9` TxnOp (a transaction id wrapping
//! an ordinary Insert/InsertBatch/Delete body). Replay *buffers* TxnOp
//! records per transaction and applies them only when the matching
//! TxnCommit is decoded — stamped with the commit record's LSN, the
//! transaction's atomicity point. A transaction whose commit record
//! never made it to stable storage (crash, abort, torn tail) is
//! discarded wholesale, which is what makes a multi-statement commit
//! all-or-nothing across any WAL fault point.
//!
//! ## Locks
//!
//! `wal_store` (the segment store + segment index) is held across the
//! physical append/fsync of a flush; `wal_state` (LSN allocator, commit
//! buffer, durable watermark) is only ever held for short critical
//! sections — never across IO. `wal_store` is acquired before
//! `wal_state`, never the other way; a flusher steals the buffer under
//! `wal_state`, *releases it*, and only then takes `wal_store` to
//! flush. At most one flusher (writer thread, strict-mode leader, or
//! recovery probe) is in flight at a time — a `flush_inflight` token in
//! `wal_state` serializes steal+flush so batches reach storage in LSN
//! order, which is what lets a successful flush publish
//! `durable_lsn = max(batch)`. See `LOCK_ORDER.md`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cstore_common::fault::FaultInjector;
use cstore_common::sync::{Condvar, Mutex};
use cstore_common::waits::{self, WaitClass};
use cstore_common::{metrics, Error, Result, Row, RowId};
use cstore_storage::format::{crc32, read_value, write_value, Reader, Writer};
use cstore_storage::log::LogStore;

use crate::table::ColumnStoreTable;

/// Upper bound on a single record frame; anything larger is treated as
/// log corruption rather than attempted as an allocation.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Histogram bounds for the group-commit batch size (records per flush).
pub const BATCH_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// How much durability a commit waits for. See the module docs and
/// `DESIGN.md` §8; selected per-database with `SET wal_sync = …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSyncMode {
    /// Acknowledge once buffered; the writer thread flushes behind the
    /// caller. Loss window: every frame not yet flushed at the crash.
    Off,
    /// Acknowledge once the writer thread has fsynced the commit's LSN.
    #[default]
    Group,
    /// As `Group`, but the committer flushes inline (leader-style).
    Strict,
}

impl WalSyncMode {
    /// Parse a `SET wal_sync` value (case-insensitive).
    pub fn parse(s: &str) -> Option<WalSyncMode> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(WalSyncMode::Off),
            "group" => Some(WalSyncMode::Group),
            "strict" => Some(WalSyncMode::Strict),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            WalSyncMode::Off => "off",
            WalSyncMode::Group => "group",
            WalSyncMode::Strict => "strict",
        }
    }

    /// Stable numeric form, for storing the mode in an atomic.
    pub fn to_u8(self) -> u8 {
        match self {
            WalSyncMode::Off => 0,
            WalSyncMode::Group => 1,
            WalSyncMode::Strict => 2,
        }
    }

    /// Inverse of [`WalSyncMode::to_u8`]; unknown values decode as the
    /// `Group` default.
    pub fn from_u8(v: u8) -> WalSyncMode {
        match v {
            0 => WalSyncMode::Off,
            2 => WalSyncMode::Strict,
            _ => WalSyncMode::Group,
        }
    }
}

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A trickle insert of one row.
    Insert { table: String, row: Row },
    /// A delete; carries the row values for replay-by-value fallback.
    Delete { table: String, rid: RowId, row: Row },
    /// Tuple mover sealed a delta store into a compressed row group.
    RowGroupSealed {
        table: String,
        group: u32,
        rows: u64,
    },
    /// A generation-stamped save committed; per-table LSN watermarks.
    Checkpoint {
        generation: u64,
        boundaries: Vec<(String, u64)>,
    },
    /// Every row of one multi-row statement or bulk-load chunk under a
    /// single LSN: replay applies all of them or none (watermark check
    /// on the one LSN), and ingest pays one commit for the whole frame.
    InsertBatch { table: String, rows: Vec<Row> },
    /// An explicit transaction opened (`BEGIN`).
    TxnBegin { txn: u64 },
    /// The transaction's atomicity point: replay applies the buffered
    /// TxnOp records of `txn` when (and only when) this record is seen.
    TxnCommit { txn: u64 },
    /// The transaction rolled back; replay discards its buffered ops.
    /// Informational — a missing abort record (crash) discards too.
    TxnAbort { txn: u64 },
    /// One DML operation inside an open transaction: an ordinary
    /// Insert/InsertBatch/Delete body tagged with the owning txn id.
    /// Logged at statement time, applied (or discarded) at commit.
    TxnOp { txn: u64, op: Box<WalRecord> },
}

impl WalRecord {
    fn type_tag(&self) -> u8 {
        match self {
            WalRecord::Insert { .. } => 1,
            WalRecord::Delete { .. } => 2,
            WalRecord::RowGroupSealed { .. } => 3,
            WalRecord::Checkpoint { .. } => 4,
            WalRecord::InsertBatch { .. } => 5,
            WalRecord::TxnBegin { .. } => 6,
            WalRecord::TxnCommit { .. } => 7,
            WalRecord::TxnAbort { .. } => 8,
            WalRecord::TxnOp { .. } => 9,
        }
    }

    fn encode_body(&self, w: &mut Writer) -> Result<()> {
        match self {
            WalRecord::Insert { table, row } => {
                w.lp_bytes(table.as_bytes())?;
                write_row(w, row)?;
            }
            WalRecord::Delete { table, rid, row } => {
                w.lp_bytes(table.as_bytes())?;
                w.u64(rid.pack());
                write_row(w, row)?;
            }
            WalRecord::RowGroupSealed { table, group, rows } => {
                w.lp_bytes(table.as_bytes())?;
                w.u32(*group);
                w.u64(*rows);
            }
            WalRecord::Checkpoint {
                generation,
                boundaries,
            } => {
                w.u64(*generation);
                w.u32(boundaries.len() as u32);
                for (table, lsn) in boundaries {
                    w.lp_bytes(table.as_bytes())?;
                    w.u64(*lsn);
                }
            }
            WalRecord::InsertBatch { table, rows } => {
                w.lp_bytes(table.as_bytes())?;
                w.u32(rows.len() as u32);
                for row in rows {
                    write_row(w, row)?;
                }
            }
            WalRecord::TxnBegin { txn }
            | WalRecord::TxnCommit { txn }
            | WalRecord::TxnAbort { txn } => {
                w.u64(*txn);
            }
            WalRecord::TxnOp { txn, op } => {
                w.u64(*txn);
                w.u8(op.type_tag());
                op.encode_body(w)?;
            }
        }
        Ok(())
    }

    fn decode_body(tag: u8, r: &mut Reader<'_>) -> Result<WalRecord> {
        let read_name = |r: &mut Reader<'_>| -> Result<String> {
            String::from_utf8(r.lp_bytes()?.to_vec())
                .map_err(|_| Error::Storage("WAL record table name is not UTF-8".into()))
        };
        match tag {
            1 => Ok(WalRecord::Insert {
                table: read_name(r)?,
                row: read_row(r)?,
            }),
            2 => Ok(WalRecord::Delete {
                table: read_name(r)?,
                rid: RowId::unpack(r.u64()?),
                row: read_row(r)?,
            }),
            3 => Ok(WalRecord::RowGroupSealed {
                table: read_name(r)?,
                group: r.u32()?,
                rows: r.u64()?,
            }),
            4 => {
                let generation = r.u64()?;
                let n = r.u32()? as usize;
                let mut boundaries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let table = read_name(r)?;
                    boundaries.push((table, r.u64()?));
                }
                Ok(WalRecord::Checkpoint {
                    generation,
                    boundaries,
                })
            }
            5 => {
                let table = read_name(r)?;
                let n = r.u32()? as usize;
                if n > 1 << 24 {
                    return Err(Error::Storage(format!(
                        "WAL insert batch has absurd cardinality {n}"
                    )));
                }
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    rows.push(read_row(r)?);
                }
                Ok(WalRecord::InsertBatch { table, rows })
            }
            6 => Ok(WalRecord::TxnBegin { txn: r.u64()? }),
            7 => Ok(WalRecord::TxnCommit { txn: r.u64()? }),
            8 => Ok(WalRecord::TxnAbort { txn: r.u64()? }),
            9 => {
                let txn = r.u64()?;
                let inner = r.u8()?;
                // Only plain DML may ride inside a transaction: a nested
                // TxnOp, a Checkpoint, or a mover marker inside a frame
                // is corruption, not a valid log.
                if !matches!(inner, 1 | 2 | 5) {
                    return Err(Error::Storage(format!(
                        "WAL TxnOp wraps invalid inner record type {inner}"
                    )));
                }
                let op = WalRecord::decode_body(inner, r)?;
                Ok(WalRecord::TxnOp {
                    txn,
                    op: Box::new(op),
                })
            }
            other => Err(Error::Storage(format!("unknown WAL record type {other}"))),
        }
    }
}

fn write_row(w: &mut Writer, row: &Row) -> Result<()> {
    w.u32(row.len() as u32);
    for v in row.values() {
        write_value(w, v)?;
    }
    Ok(())
}

fn read_row(r: &mut Reader<'_>) -> Result<Row> {
    let n = r.u32()? as usize;
    if n > 1 << 20 {
        return Err(Error::Storage(format!("WAL row has absurd arity {n}")));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(r)?);
    }
    Ok(Row::new(values))
}

/// Encode one frame: `[len][crc][payload]` with `payload = [lsn][tag][body]`.
fn encode_frame(lsn: u64, record: &WalRecord) -> Result<Vec<u8>> {
    let mut payload = Writer::new();
    payload.u64(lsn);
    payload.u8(record.type_tag());
    record.encode_body(&mut payload)?;
    let payload = payload.into_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Why frame decoding stopped partway through a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FrameStop {
    /// Clean end of segment.
    End,
    /// Incomplete or CRC-failing frame starting at this byte offset.
    Bad { offset: u64, reason: String },
}

/// Decode frames sequentially, calling `f` per record. Returns where and
/// why decoding stopped.
fn decode_frames(
    bytes: &[u8],
    mut f: impl FnMut(u64, WalRecord) -> Result<()>,
) -> Result<FrameStop> {
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < 8 {
            return Ok(FrameStop::Bad {
                offset: off as u64,
                reason: format!("truncated frame header ({} bytes)", rest.len()),
            });
        }
        // lint: allow(unwrap) — slice length checked ≥ 8 above
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        // lint: allow(unwrap) — slice length checked ≥ 8 above
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BYTES {
            return Ok(FrameStop::Bad {
                offset: off as u64,
                reason: format!("frame length {len} exceeds limit"),
            });
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            return Ok(FrameStop::Bad {
                offset: off as u64,
                reason: format!("torn frame: {} of {} payload bytes", rest.len() - 8, len),
            });
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return Ok(FrameStop::Bad {
                offset: off as u64,
                reason: "frame CRC mismatch".into(),
            });
        }
        let mut r = Reader::new(payload);
        let lsn = r.u64()?;
        let tag = r.u8()?;
        let record = WalRecord::decode_body(tag, &mut r).map_err(|e| {
            Error::Storage(format!(
                "WAL frame at offset {off} decodes but is invalid: {e}"
            ))
        })?;
        f(lsn, record)?;
        off += 8 + len;
    }
    Ok(FrameStop::End)
}

/// Tuning knobs for the WAL.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// Strict open fails on an unreadable *interior* segment; degraded
    /// open quarantines it and keeps going. A torn tail in the *last*
    /// segment is normal crash debris and is truncated in both modes.
    pub strict: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 << 20,
            strict: false,
        }
    }
}

/// A quarantined (unreadable) log segment noted during replay.
#[derive(Debug, Clone)]
pub struct SegmentQuarantine {
    pub segment: u64,
    pub reason: String,
}

/// What [`Wal::open`] found and did during replay.
#[derive(Debug, Clone, Default)]
pub struct WalReplayReport {
    /// Frames decoded across all segments.
    pub records_scanned: u64,
    /// Records applied to a table (insert/delete past its watermark).
    pub records_applied: u64,
    /// Records skipped because the save already contained them.
    pub records_below_watermark: u64,
    /// Records naming a table the catalog no longer (or not yet) has.
    pub records_unknown_table: u64,
    /// Delete records whose row could not be located (already gone).
    pub deletes_unmatched: u64,
    /// Truncation events (0 or 1: the torn tail, when present).
    pub records_truncated: u64,
    /// Torn tail truncated from the final segment, if any:
    /// (segment, offset, reason).
    pub torn_tail: Option<(u64, u64, String)>,
    /// Unreadable interior segments quarantined in degraded mode.
    pub quarantined: Vec<SegmentQuarantine>,
    /// Last checkpoint record seen: (generation, lsn).
    pub last_checkpoint: Option<(u64, u64)>,
    /// Highest LSN seen in the log.
    pub max_lsn: u64,
    /// Transactions whose TxnCommit was decoded and whose buffered ops
    /// were applied (or skipped below-watermark as a unit).
    pub txns_committed: u64,
    /// Transactions discarded: an explicit TxnAbort, or no commit record
    /// by the end of the log (crash between TxnBegin and TxnCommit).
    pub txns_discarded: u64,
}

impl WalReplayReport {
    /// True when replay saw no corruption of any kind.
    pub fn is_clean(&self) -> bool {
        self.torn_tail.is_none() && self.quarantined.is_empty()
    }
}

/// Per-segment bookkeeping for retirement decisions.
#[derive(Debug, Clone, Copy)]
struct SegmentInfo {
    bytes: u64,
    max_lsn: u64,
}

/// State behind the `wal_store` lock: the physical segment store.
struct StoreState {
    store: Box<dyn LogStore>,
    /// Existing segments and their stats, keyed by id (sorted).
    segments: BTreeMap<u64, SegmentInfo>,
    /// Segment currently receiving appends.
    active: u64,
    faults: Option<FaultInjector>,
}

impl StoreState {
    /// Move to a fresh, durably created segment.
    fn rotate(&mut self) -> Result<()> {
        let next = self.active + 1;
        self.store.create(next)?;
        self.segments.insert(
            next,
            SegmentInfo {
                bytes: 0,
                max_lsn: 0,
            },
        );
        self.active = next;
        Ok(())
    }
}

/// State behind the `wal_state` lock: LSNs, the commit buffer, counters.
#[derive(Default)]
struct WalState {
    next_lsn: u64,
    durable_lsn: u64,
    /// Buffered (lsn, frame) pairs awaiting the next group flush.
    buffer: Vec<(u64, Vec<u8>)>,
    /// A flush failed; the WAL refuses further work (durability of
    /// anything not yet acknowledged is unknown).
    failed: Option<String>,
    /// LSN ranges `(above, below]` that rode a flush that failed: those
    /// frames are gone (or of unknown durability), so their committers
    /// must observe an error *even after* a recovery probe clears
    /// `failed` and pushes `durable_lsn` past them. Ranges are open
    /// below at the durable watermark as of the failure, so LSNs that
    /// were already durable before the failed flush are never reported
    /// lost.
    lost: Vec<(u64, u64)>,
    /// A stolen batch is currently being appended/fsynced. Exactly one
    /// flusher (the writer thread, a strict-mode leader, or a recovery
    /// probe) may hold this at a time: `durable_lsn = max(batch)` in
    /// [`WalCore::finish_flush`] is only correct if batches reach
    /// storage in the LSN order they were stolen in.
    flush_inflight: bool,
    /// The log-writer thread exits once this is set and the buffer is
    /// drained; set by `Wal::drop`.
    shutdown: bool,
    /// The dedicated log-writer thread; joined on `Wal::drop`.
    writer: Option<std::thread::JoinHandle<()>>,
    counters: WalCounters,
}

/// Cumulative counters surfaced via `sys.wal` and the metrics registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalCounters {
    pub records_appended: u64,
    pub bytes_appended: u64,
    pub fsyncs: u64,
    pub flushes: u64,
    pub checkpoints: u64,
    pub segments_retired: u64,
    pub records_replayed: u64,
    pub records_truncated: u64,
    pub segments_quarantined: u64,
}

/// Point-in-time WAL status for introspection (`sys.wal`).
#[derive(Debug, Clone)]
pub struct WalStatus {
    pub segment_count: u64,
    pub active_segment: u64,
    pub tail_lsn: u64,
    pub durable_lsn: u64,
    pub last_checkpoint: Option<(u64, u64)>,
    pub sync_mode: WalSyncMode,
    pub counters: WalCounters,
    pub failed: Option<String>,
}

/// Shared WAL internals: everything the log-writer thread needs without
/// keeping the public [`Wal`] (and therefore its drop-driven shutdown)
/// alive. `Wal` is a thin handle around this.
struct WalCore {
    wal_store: Mutex<StoreState>,
    wal_state: Mutex<WalState>,
    /// Committers park here; the flusher (writer thread or strict-mode
    /// leader) notifies after every durable-LSN or failure update.
    flushed: Condvar,
    /// The log-writer thread parks here when the buffer is empty (or the
    /// WAL is failed); committers and shutdown notify it.
    work: Condvar,
    /// Current `SET wal_sync` mode (a `WalSyncMode` as u8).
    sync_mode: AtomicU8,
    options: WalOptions,
    /// Last checkpoint (generation, lsn) — updated on `checkpoint`.
    last_checkpoint: Mutex<Option<(u64, u64)>>,
}

/// The write-ahead log. Shared (`Arc`) between the database and every
/// column-store table wired to it; dropping the last handle shuts down
/// and joins the log-writer thread (draining any buffered tail).
pub struct Wal {
    core: Arc<WalCore>,
}

/// The dedicated log-writer thread: steal the commit buffer under
/// `wal_state`, release the lock, flush (append + fsync) under
/// `wal_store`, publish the outcome, repeat. Committers keep buffering
/// batch N+1 while batch N is in flight here — that is the pipelining.
/// A failed WAL parks the writer until a probe clears it; shutdown
/// drains whatever is still flushable, then exits.
fn writer_loop(core: Arc<WalCore>) {
    loop {
        let batch = {
            let mut st = core.wal_state.lock();
            // Never steal while another flusher (a strict-mode leader or
            // a recovery probe) is in flight — even during shutdown —
            // or two batches could race for storage and fsync out of
            // LSN order. `finish_flush` notifies `work` when it clears
            // the token.
            while st.flush_inflight
                || (!st.shutdown && (st.failed.is_some() || st.buffer.is_empty()))
            {
                st = core.work.wait(st);
            }
            if st.failed.is_some() || st.buffer.is_empty() {
                // Shutting down with nothing flushable left.
                return;
            }
            st.flush_inflight = true;
            std::mem::take(&mut st.buffer)
        };
        let res = core.flush_batch(&batch);
        if let Err(_e) = core.finish_flush(&batch, res) {
            // The failure is recorded sticky in `wal_state` and surfaced
            // to every committer; the writer parks until a probe clears.
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let handle = {
            let mut st = self.core.wal_state.lock();
            st.shutdown = true;
            st.writer.take()
        };
        self.core.work.notify_all();
        if let Some(h) = handle {
            // lint: allow(discard) — the writer thread returns no payload
            let _ = h.join();
        }
    }
}

impl Wal {
    /// Open the log in `store`: scan every segment, replay records past
    /// each table's persisted watermark into `tables`, truncate a torn
    /// tail, position the log for appending, and start the log-writer
    /// thread. `tables` maps lower-cased table names to their freshly
    /// loaded tables.
    pub fn open(
        mut store: Box<dyn LogStore>,
        options: WalOptions,
        faults: Option<FaultInjector>,
        tables: &[(String, ColumnStoreTable)],
    ) -> Result<(Arc<Wal>, WalReplayReport)> {
        let mut report = WalReplayReport::default();
        let by_name: BTreeMap<String, &ColumnStoreTable> = tables
            .iter()
            .map(|(n, t)| (n.to_ascii_lowercase(), t))
            .collect();

        let ids = store.segment_ids()?;
        let mut segments = BTreeMap::new();
        let last_seg = ids.last().copied();
        // In-flight transactions: TxnOp frames buffer here (in log
        // order, across segment boundaries) until their TxnCommit
        // applies them or a TxnAbort / end-of-log discards them.
        let mut pending_txns: BTreeMap<u64, Vec<WalRecord>> = BTreeMap::new();
        for seg in &ids {
            let seg = *seg;
            if let Some(f) = &faults {
                if let Some(kind) = f.hit("wal.replay") {
                    Self::note_unreadable(
                        seg,
                        kind.to_error("wal.replay").to_string(),
                        options.strict,
                        &mut report,
                    )?;
                    segments.insert(
                        seg,
                        SegmentInfo {
                            bytes: 0,
                            max_lsn: 0,
                        },
                    );
                    continue;
                }
            }
            let bytes = match store.read(seg) {
                Ok(b) => b,
                Err(e) => {
                    Self::note_unreadable(seg, e.to_string(), options.strict, &mut report)?;
                    segments.insert(
                        seg,
                        SegmentInfo {
                            bytes: 0,
                            max_lsn: 0,
                        },
                    );
                    continue;
                }
            };
            let mut seg_max_lsn = 0u64;
            let stop = decode_frames(&bytes, |lsn, record| {
                report.records_scanned += 1;
                seg_max_lsn = seg_max_lsn.max(lsn);
                report.max_lsn = report.max_lsn.max(lsn);
                Self::apply_record(lsn, record, &by_name, &mut pending_txns, &mut report)
            })?;
            let mut seg_bytes = bytes.len() as u64;
            if let FrameStop::Bad { offset, reason } = stop {
                if Some(seg) == last_seg {
                    // Torn tail: normal crash debris. Truncate durably so
                    // new appends land after a valid prefix.
                    let dropped = bytes.len() as u64 - offset;
                    store.truncate(seg, offset)?;
                    seg_bytes = offset;
                    report.records_truncated += 1;
                    report.torn_tail =
                        Some((seg, offset, format!("{reason} ({dropped} bytes dropped)")));
                } else {
                    // Corruption in the interior of the log: later
                    // segments hold acknowledged records, so this is real
                    // damage, not a crash tail.
                    Self::note_unreadable(
                        seg,
                        format!("bad frame at offset {offset}: {reason}"),
                        options.strict,
                        &mut report,
                    )?;
                }
            }
            segments.insert(
                seg,
                SegmentInfo {
                    bytes: seg_bytes,
                    max_lsn: seg_max_lsn,
                },
            );
        }

        // Transactions still open at the end of the log never committed:
        // the crash (or a retired abort record) beat their TxnCommit.
        // Their buffered ops are simply dropped — all-or-nothing.
        report.txns_discarded += pending_txns.len() as u64;
        drop(pending_txns);

        // Position for appending: continue the last segment, or start one.
        let active = match last_seg {
            Some(id) => id,
            None => {
                store.create(1)?;
                segments.insert(
                    1,
                    SegmentInfo {
                        bytes: 0,
                        max_lsn: 0,
                    },
                );
                1
            }
        };

        let counters = WalCounters {
            records_replayed: report.records_applied,
            records_truncated: report.records_truncated,
            segments_quarantined: report.quarantined.len() as u64,
            ..Default::default()
        };
        let m = metrics::global();
        m.add("cstore_wal_replayed_records_total", report.records_applied);
        m.add(
            "cstore_wal_truncated_records_total",
            report.records_truncated,
        );
        m.add(
            "cstore_wal_quarantined_segments_total",
            report.quarantined.len() as u64,
        );

        let core = Arc::new(WalCore {
            wal_store: Mutex::new_leveled(
                9,
                "wal.store",
                StoreState {
                    store,
                    segments,
                    active,
                    faults,
                },
            ),
            wal_state: Mutex::new_leveled(
                10,
                "wal.state",
                WalState {
                    next_lsn: report.max_lsn + 1,
                    durable_lsn: report.max_lsn,
                    counters,
                    ..Default::default()
                },
            ),
            flushed: Condvar::new(),
            work: Condvar::new(),
            sync_mode: AtomicU8::new(WalSyncMode::default().to_u8()),
            options,
            last_checkpoint: Mutex::new_leveled(11, "wal.ckpt", report.last_checkpoint),
        });
        let writer = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("cstore-wal-writer".into())
                .spawn(move || writer_loop(core))
                // lint: allow(unwrap) — thread spawn fails only on OS
                // resource exhaustion, at which point nothing works
                .expect("spawn WAL writer thread")
        };
        core.wal_state.lock().writer = Some(writer);
        Ok((Arc::new(Wal { core }), report))
    }

    fn note_unreadable(
        seg: u64,
        reason: String,
        strict: bool,
        report: &mut WalReplayReport,
    ) -> Result<()> {
        if strict {
            return Err(Error::Storage(format!(
                "WAL segment {seg} is unreadable: {reason}"
            )));
        }
        report.quarantined.push(SegmentQuarantine {
            segment: seg,
            reason,
        });
        Ok(())
    }

    fn apply_record(
        lsn: u64,
        record: WalRecord,
        tables: &BTreeMap<String, &ColumnStoreTable>,
        pending_txns: &mut BTreeMap<u64, Vec<WalRecord>>,
        report: &mut WalReplayReport,
    ) -> Result<()> {
        match record {
            WalRecord::TxnBegin { txn } => {
                pending_txns.insert(txn, Vec::new());
            }
            WalRecord::TxnOp { txn, op } => {
                // A TxnOp whose TxnBegin fell into a retired/quarantined
                // segment still buffers: only the commit record decides.
                pending_txns.entry(txn).or_default().push(*op);
            }
            WalRecord::TxnAbort { txn } => {
                if pending_txns.remove(&txn).is_some() {
                    report.txns_discarded += 1;
                }
            }
            WalRecord::TxnCommit { txn } => {
                let Some(ops) = pending_txns.remove(&txn) else {
                    // Commit record without buffered ops: the whole
                    // transaction (begin + ops + commit) was already
                    // covered by a save and its segments retired, or it
                    // was read-only. Nothing to do.
                    report.txns_committed += 1;
                    return Ok(());
                };
                // Group by table, preserving per-table log order (the
                // order that makes delete-after-own-insert resolve), and
                // stamp every op with the *commit* LSN: interleaved
                // auto-commit frames may have advanced a table's
                // watermark past the ops' original LSNs, but the commit
                // record is the transaction's atomicity point.
                let mut by_table: Vec<(String, Vec<TxnApplyOp>)> = Vec::new();
                for op in ops {
                    let (name, apply) = match op {
                        WalRecord::Insert { table, row } => (table, TxnApplyOp::Insert(vec![row])),
                        WalRecord::InsertBatch { table, rows } => (table, TxnApplyOp::Insert(rows)),
                        WalRecord::Delete { table, rid, row } => {
                            (table, TxnApplyOp::Delete(rid, row))
                        }
                        // decode_body guards the inner tag; unreachable.
                        _ => continue,
                    };
                    let key = name.to_ascii_lowercase();
                    match by_table.iter_mut().find(|(n, _)| *n == key) {
                        Some((_, v)) => v.push(apply),
                        None => by_table.push((key, vec![apply])),
                    }
                }
                for (name, ops) in by_table {
                    let Some(t) = tables.get(&name) else {
                        report.records_unknown_table += 1;
                        continue;
                    };
                    if t.wal_apply_txn_ops(lsn, &ops)? {
                        report.records_applied += 1;
                    } else {
                        report.records_below_watermark += 1;
                    }
                }
                report.txns_committed += 1;
            }
            WalRecord::Insert { table, row } => {
                let Some(t) = tables.get(&table.to_ascii_lowercase()) else {
                    report.records_unknown_table += 1;
                    return Ok(());
                };
                if t.wal_apply_insert(lsn, row)? {
                    report.records_applied += 1;
                } else {
                    report.records_below_watermark += 1;
                }
            }
            WalRecord::InsertBatch { table, rows } => {
                let Some(t) = tables.get(&table.to_ascii_lowercase()) else {
                    report.records_unknown_table += 1;
                    return Ok(());
                };
                if t.wal_apply_insert_batch(lsn, rows)? {
                    report.records_applied += 1;
                } else {
                    report.records_below_watermark += 1;
                }
            }
            WalRecord::Delete { table, rid, row } => {
                let Some(t) = tables.get(&table.to_ascii_lowercase()) else {
                    report.records_unknown_table += 1;
                    return Ok(());
                };
                match t.wal_apply_delete(lsn, rid, &row)? {
                    ReplayDelete::Applied => report.records_applied += 1,
                    ReplayDelete::BelowWatermark => report.records_below_watermark += 1,
                    ReplayDelete::NotFound => {
                        report.records_applied += 1;
                        report.deletes_unmatched += 1;
                    }
                }
            }
            WalRecord::RowGroupSealed { .. } => {
                // Informational: replay re-inserts the rows as delta rows;
                // the mover will re-seal them in due course.
            }
            WalRecord::Checkpoint {
                generation,
                boundaries: _,
            } => {
                report.last_checkpoint = Some((generation, lsn));
            }
        }
        Ok(())
    }

    /// Append a record to the commit buffer, returning its LSN. Cheap:
    /// encodes the frame and pushes it under the `wal_state` lock; call
    /// [`Wal::commit`] (after releasing any table lock) to make it
    /// durable. Safe to call while holding a table's write lock.
    pub fn log(&self, record: &WalRecord) -> Result<u64> {
        let mut frame_tail = encode_frame(0, record)?; // placeholder lsn
        let mut st = self.core.wal_state.lock();
        if let Some(e) = &st.failed {
            return Err(Error::Storage(format!("WAL is failed: {e}")));
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        // Patch the real LSN into the already encoded frame (offset 8 =
        // after len+crc), then fix the CRC over the payload.
        frame_tail[8..16].copy_from_slice(&lsn.to_le_bytes());
        let crc = crc32(&frame_tail[8..]);
        frame_tail[4..8].copy_from_slice(&crc.to_le_bytes());
        st.counters.records_appended += 1;
        st.counters.bytes_appended += frame_tail.len() as u64;
        st.buffer.push((lsn, frame_tail));
        Ok(lsn)
    }

    /// Make every record up to `lsn` durable per the current
    /// [`WalSyncMode`]: park until the writer thread flushes it
    /// (`group`), flush it ourselves (`strict`), or acknowledge
    /// immediately and let the writer catch up (`off`). Must not be
    /// called while holding a table lock.
    pub fn commit(&self, lsn: u64) -> Result<()> {
        self.commit_mode(lsn, self.sync_mode())
    }

    /// Like [`Wal::commit`] but always waits for durability regardless
    /// of the session `wal_sync` mode. Checkpoints and recovery probes
    /// must not be acknowledged before they reach stable storage.
    pub fn sync_commit(&self, lsn: u64) -> Result<()> {
        self.commit_mode(lsn, WalSyncMode::Strict)
    }

    fn commit_mode(&self, lsn: u64, mode: WalSyncMode) -> Result<()> {
        let start = Instant::now();
        let mut waited = false;
        let result = self.commit_mode_inner(lsn, mode, &mut waited);
        if waited {
            // Charged to the committing query's wait frame: time parked
            // on the group-commit condvar, or spent leading a strict
            // flush on the group's behalf. The fast paths (already
            // durable, `off` ack) record nothing.
            waits::observe(WaitClass::WalCommit, start.elapsed());
        }
        result
    }

    fn commit_mode_inner(&self, lsn: u64, mode: WalSyncMode, waited: &mut bool) -> Result<()> {
        let mut st = self.core.wal_state.lock();
        loop {
            // Order matters: a records-lost check must precede the
            // durable check, because a successful recovery probe pushes
            // `durable_lsn` *past* the LSNs that rode the failed flush —
            // without this, a committer woken after the probe would see
            // durable ≥ lsn and acknowledge a lost record. Ranges, not a
            // floor: LSNs already durable *before* the failed flush are
            // on disk and must still acknowledge cleanly.
            if let Some(&(above, below)) = st
                .lost
                .iter()
                .find(|&&(above, below)| above < lsn && lsn <= below)
            {
                return Err(Error::Storage(format!(
                    "WAL records in LSN range ({above}, {below}] were lost in a failed flush"
                )));
            }
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if let Some(e) = &st.failed {
                return Err(Error::Storage(format!("WAL is failed: {e}")));
            }
            match mode {
                WalSyncMode::Off => {
                    // Acknowledge now; the writer thread flushes behind
                    // us. The loss window is the buffered tail.
                    drop(st);
                    self.core.work.notify_one();
                    return Ok(());
                }
                WalSyncMode::Strict if !st.buffer.is_empty() && !st.flush_inflight => {
                    // Leader path: flush the buffer ourselves instead of
                    // handing off to the writer thread. Only with the
                    // flush token in hand — a second concurrent flusher
                    // would race for storage and could fsync batches out
                    // of LSN order, breaking `durable_lsn = max(batch)`.
                    // If a flush is already in flight we park below and
                    // re-evaluate when it completes.
                    st.flush_inflight = true;
                    let batch = std::mem::take(&mut st.buffer);
                    drop(st);
                    *waited = true;
                    self.core
                        .finish_flush(&batch, self.core.flush_batch(&batch))?;
                    st = self.core.wal_state.lock();
                }
                _ => {
                    // Hand the buffered batch to the writer thread and
                    // park until it publishes our LSN (or a failure).
                    *waited = true;
                    self.core.work.notify_one();
                    st = self.core.flushed.wait(st);
                }
            }
        }
    }

    /// Convenience: `log` + `commit` in one call.
    pub fn log_and_commit(&self, record: &WalRecord) -> Result<u64> {
        let lsn = self.log(record)?;
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// Current `SET wal_sync` durability mode.
    pub fn sync_mode(&self) -> WalSyncMode {
        WalSyncMode::from_u8(self.core.sync_mode.load(Ordering::Relaxed))
    }

    /// Switch the durability mode. Takes effect for subsequent commits;
    /// in-flight commits finish under the mode they started with.
    pub fn set_sync_mode(&self, mode: WalSyncMode) {
        self.core.sync_mode.store(mode.to_u8(), Ordering::Relaxed);
        // Leaving `off`: anything acknowledged under the old mode should
        // stop being a loss window as soon as possible.
        self.core.work.notify_one();
    }

    /// Record a committed save: rotate to a fresh segment, append and
    /// fsync a Checkpoint record, then retire segments wholly covered by
    /// the save (`max_lsn` ≤ the smallest per-table watermark). Returns
    /// the number of segments retired. Always durable, even under
    /// `wal_sync = off`.
    pub fn checkpoint(&self, generation: u64, boundaries: Vec<(String, u64)>) -> Result<u64> {
        let floor = boundaries
            .iter()
            .map(|(_, lsn)| *lsn)
            .min()
            .unwrap_or(u64::MAX);
        {
            let mut ss = self.core.wal_store.lock();
            let active_nonempty = ss.segments.get(&ss.active).is_some_and(|i| i.bytes > 0);
            if active_nonempty {
                ss.rotate()?;
            }
        }
        let lsn = self.log(&WalRecord::Checkpoint {
            generation,
            boundaries,
        })?;
        self.sync_commit(lsn)?;
        let mut retired = 0u64;
        {
            let mut ss = self.core.wal_store.lock();
            let retirable: Vec<u64> = ss
                .segments
                .iter()
                .filter(|(&id, info)| id != ss.active && info.max_lsn <= floor)
                .map(|(&id, _)| id)
                .collect();
            for id in retirable {
                ss.store.remove(id)?;
                ss.segments.remove(&id);
                retired += 1;
            }
        }
        {
            let mut st = self.core.wal_state.lock();
            st.counters.checkpoints += 1;
            st.counters.segments_retired += retired;
        }
        *self.core.last_checkpoint.lock() = Some((generation, lsn));
        let m = metrics::global();
        m.add("cstore_wal_checkpoints_total", 1);
        m.add("cstore_wal_retired_segments_total", retired);
        Ok(retired)
    }

    /// Attempt to clear a sticky flush failure by proving the log can
    /// accept writes again: append and fsync a probe record — plus any
    /// frames still sitting in the commit buffer — through the real IO
    /// path (including the `wal.append`/`wal.fsync` fault points). On
    /// success the failure clears and logging resumes; on failure the
    /// WAL stays failed and the probe error is returned. Records that
    /// rode the *original* failed flush stay lost either way: their
    /// committers keep observing an error (see `WalState::lost`). A healthy
    /// WAL returns `Ok` without touching storage. Called by the
    /// database's health state machine during recovery probing.
    pub fn try_clear_failure(&self) -> Result<()> {
        let (mut batch, probe_lsn) = {
            let mut st = self.core.wal_state.lock();
            // Serialize with any in-flight flush (including a racing
            // probe): the single-flusher invariant holds here too.
            loop {
                if st.failed.is_none() {
                    return Ok(());
                }
                if !st.flush_inflight {
                    break;
                }
                st = self.core.flushed.wait(st);
            }
            st.flush_inflight = true;
            let lsn = st.next_lsn;
            st.next_lsn += 1;
            // Take the frames buffered behind the failure with us: they
            // were never acknowledged, and flushing them alongside the
            // probe means their (still-parked or future) committers can
            // legitimately see durable ≥ lsn afterwards.
            (std::mem::take(&mut st.buffer), lsn)
        };
        // The probe is a RowGroupSealed marker: informational at replay,
        // so a successfully probed-but-then-crashed log replays cleanly.
        let frame = encode_frame(
            probe_lsn,
            &WalRecord::RowGroupSealed {
                table: "<wal.probe>".into(),
                group: 0,
                rows: 0,
            },
        )?;
        let frame_len = frame.len() as u64;
        batch.push((probe_lsn, frame));
        let res = self.core.flush_batch(&batch);
        let mut st = self.core.wal_state.lock();
        st.flush_inflight = false;
        match res {
            Ok(()) => {
                st.durable_lsn = st.durable_lsn.max(probe_lsn);
                st.counters.records_appended += 1;
                st.counters.bytes_appended += frame_len;
                st.counters.flushes += 1;
                st.counters.fsyncs += 1;
                st.failed = None;
            }
            Err(e) => {
                // The probe batch (buffered frames included) is now of
                // unknown durability too; everything in it sits above
                // the (unchanged) durable watermark.
                if probe_lsn > st.durable_lsn {
                    let lost = (st.durable_lsn, probe_lsn);
                    st.lost.push(lost);
                }
                st.failed = Some(e.to_string());
                drop(st);
                self.core.flushed.notify_all();
                return Err(e);
            }
        }
        drop(st);
        self.core.flushed.notify_all();
        self.core.work.notify_one();
        Ok(())
    }

    /// Consult the WAL's fault injector at `point` (used by the
    /// transaction layer for the `wal.txn_begin` / `wal.txn_commit` /
    /// `wal.txn_abort` points, which wrap whole framing records rather
    /// than individual appends). No-op without an injector.
    pub fn fault_check(&self, point: &str) -> Result<()> {
        let ss = self.core.wal_store.lock();
        if let Some(f) = &ss.faults {
            if let Some(kind) = f.hit(point) {
                return Err(kind.to_error(point));
            }
        }
        Ok(())
    }

    /// Highest LSN handed out so far (0 if none).
    pub fn tail_lsn(&self) -> u64 {
        self.core.wal_state.lock().next_lsn.saturating_sub(1)
    }

    /// Point-in-time status snapshot for `sys.wal`.
    pub fn status(&self) -> WalStatus {
        let (segment_count, active_segment) = {
            let ss = self.core.wal_store.lock();
            (ss.segments.len() as u64, ss.active)
        };
        let st = self.core.wal_state.lock();
        WalStatus {
            segment_count,
            active_segment,
            tail_lsn: st.next_lsn.saturating_sub(1),
            durable_lsn: st.durable_lsn,
            last_checkpoint: *self.core.last_checkpoint.lock(),
            sync_mode: self.sync_mode(),
            counters: st.counters,
            failed: st.failed.clone(),
        }
    }
}

impl WalCore {
    /// Physically append and fsync one batch. Holds `wal_store` for the
    /// duration; consults the fault injector at `wal.append` (per frame)
    /// and `wal.fsync`.
    fn flush_batch(&self, batch: &[(u64, Vec<u8>)]) -> Result<()> {
        let mut ss = self.wal_store.lock();
        let ss = &mut *ss;
        for (lsn, frame) in batch {
            if let Some(f) = &ss.faults {
                if let Some(kind) = f.hit("wal.append") {
                    use cstore_common::fault::FaultKind;
                    match kind {
                        FaultKind::IoError | FaultKind::Crash => {
                            return Err(kind.to_error("wal.append"));
                        }
                        FaultKind::TornWrite | FaultKind::TornCrash => {
                            // A power cut mid-write: some prefix of the
                            // frame reaches the platter. Make the tear
                            // durable, then die.
                            let cut = f.rng_below(frame.len() as u64) as usize;
                            ss.store.append(ss.active, &frame[..cut])?;
                            ss.store.sync(ss.active)?;
                            return Err(kind.to_error("wal.append"));
                        }
                        FaultKind::BitFlip => {
                            // The frame lands whole but with one bit
                            // flipped — latent corruption the CRC catches
                            // at replay. Then die.
                            let mut bad = frame.clone();
                            let bit = f.rng_below(bad.len() as u64 * 8);
                            bad[(bit / 8) as usize] ^= 1 << (bit % 8);
                            ss.store.append(ss.active, &bad)?;
                            ss.store.sync(ss.active)?;
                            return Err(kind.to_error("wal.append"));
                        }
                    }
                }
            }
            ss.store.append(ss.active, frame)?;
            let info = ss
                .segments
                .get_mut(&ss.active)
                // lint: allow(unwrap) — rotate() always registers the active segment
                .expect("active segment is tracked");
            info.bytes += frame.len() as u64;
            info.max_lsn = info.max_lsn.max(*lsn);
        }
        if let Some(f) = &ss.faults {
            if let Some(kind) = f.hit("wal.fsync") {
                return Err(kind.to_error("wal.fsync"));
            }
        }
        ss.store.sync(ss.active)?;
        let batch_bytes: u64 = batch.iter().map(|(_, fr)| fr.len() as u64).sum();
        let active_full = ss
            .segments
            .get(&ss.active)
            .is_some_and(|i| i.bytes >= self.options.segment_bytes);
        if active_full {
            ss.rotate()?;
        }
        let m = metrics::global();
        m.add("cstore_wal_appends_total", batch.len() as u64);
        m.add("cstore_wal_bytes_total", batch_bytes);
        m.add("cstore_wal_fsyncs_total", 1);
        m.observe(
            "cstore_wal_group_commit_batch",
            &BATCH_BUCKETS,
            batch.len() as u64,
        );
        Ok(())
    }

    /// Publish a flush outcome: release the flush token, advance the
    /// durable watermark (or record the sticky failure and the lost LSN
    /// range) and wake committers plus the writer thread.
    fn finish_flush(&self, batch: &[(u64, Vec<u8>)], res: Result<()>) -> Result<()> {
        let batch_max = batch.iter().map(|(l, _)| *l).max();
        let mut st = self.wal_state.lock();
        st.flush_inflight = false;
        match &res {
            Ok(()) => {
                if let Some(max) = batch_max {
                    st.durable_lsn = st.durable_lsn.max(max);
                }
                st.counters.flushes += 1;
                st.counters.fsyncs += 1;
            }
            Err(e) => {
                st.failed = Some(e.to_string());
                // Everything in the failed batch sits strictly above the
                // durable watermark (flushes are serialized by the
                // token), so `(durable_lsn, batch_max]` is exactly the
                // lost range — LSNs durable before the failure stay
                // acknowledgeable.
                if let Some(max) = batch_max {
                    if max > st.durable_lsn {
                        let lost = (st.durable_lsn, max);
                        st.lost.push(lost);
                    }
                }
            }
        }
        drop(st);
        self.flushed.notify_all();
        // The writer may be parked waiting for the token (e.g. during
        // shutdown drain, or with a fresh batch buffered behind a
        // strict leader's flush).
        self.work.notify_all();
        res
    }
}

/// A table's wiring into a shared WAL: the log plus the name this table
/// logs records under.
#[derive(Clone)]
pub struct WalHandle {
    pub wal: Arc<Wal>,
    pub table: String,
}

/// One buffered transactional operation, applied at its TxnCommit.
/// Within a table the ops preserve the transaction's log order, so a
/// delete targeting a row the same transaction inserted resolves.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnApplyOp {
    /// Insert these rows (one Insert or InsertBatch frame's worth).
    Insert(Vec<Row>),
    /// Delete this row; the values drive replay-by-value fallback.
    Delete(RowId, Row),
}

/// Outcome of replaying one Delete record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayDelete {
    /// The row was found (by id or by value) and deleted.
    Applied,
    /// The record predates the table's persisted watermark.
    BelowWatermark,
    /// Past the watermark but no matching row — counted, not fatal.
    NotFound,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_storage::log::MemLogStore;

    fn frame_roundtrip(record: WalRecord) {
        let frame = encode_frame(42, &record).unwrap();
        let mut seen = Vec::new();
        let stop = decode_frames(&frame, |lsn, r| {
            seen.push((lsn, r));
            Ok(())
        })
        .unwrap();
        assert_eq!(stop, FrameStop::End);
        assert_eq!(seen, vec![(42, record)]);
    }

    #[test]
    fn record_frames_roundtrip() {
        use cstore_common::{RowGroupId, Value};
        frame_roundtrip(WalRecord::Insert {
            table: "t".into(),
            row: Row::new(vec![Value::Int64(7), Value::Null, Value::from("x")]),
        });
        frame_roundtrip(WalRecord::Delete {
            table: "t".into(),
            rid: RowId::new(RowGroupId(3), 9),
            row: Row::new(vec![Value::Int32(1)]),
        });
        frame_roundtrip(WalRecord::RowGroupSealed {
            table: "t".into(),
            group: 5,
            rows: 1000,
        });
        frame_roundtrip(WalRecord::Checkpoint {
            generation: 2,
            boundaries: vec![("a".into(), 10), ("b".into(), 12)],
        });
        frame_roundtrip(WalRecord::InsertBatch {
            table: "t".into(),
            rows: vec![
                Row::new(vec![Value::Int64(1), Value::from("a")]),
                Row::new(vec![Value::Int64(2), Value::Null]),
                Row::new(vec![Value::Int64(3), Value::from("c")]),
            ],
        });
        frame_roundtrip(WalRecord::InsertBatch {
            table: "empty".into(),
            rows: vec![],
        });
    }

    #[test]
    fn txn_frames_roundtrip() {
        use cstore_common::{RowGroupId, Value};
        frame_roundtrip(WalRecord::TxnBegin { txn: 1 });
        frame_roundtrip(WalRecord::TxnCommit { txn: u64::MAX });
        frame_roundtrip(WalRecord::TxnAbort { txn: 7 });
        frame_roundtrip(WalRecord::TxnOp {
            txn: 3,
            op: Box::new(WalRecord::InsertBatch {
                table: "t".into(),
                rows: vec![Row::new(vec![Value::Int64(1), Value::from("a")])],
            }),
        });
        frame_roundtrip(WalRecord::TxnOp {
            txn: 3,
            op: Box::new(WalRecord::Delete {
                table: "t".into(),
                rid: RowId::new(RowGroupId(2), 5),
                row: Row::new(vec![Value::Int64(1)]),
            }),
        });
    }

    #[test]
    fn txn_op_rejects_non_dml_inner_record() {
        // A TxnOp wrapping a Checkpoint (tag 4) is not a valid log; the
        // decoder must refuse rather than apply it.
        let mut payload = Writer::new();
        payload.u64(9); // lsn
        payload.u8(9); // TxnOp
        payload.u64(1); // txn id
        payload.u8(4); // inner tag: Checkpoint — invalid inside a txn
        payload.u64(0);
        payload.u32(0);
        let payload = payload.into_bytes();
        let mut r = Reader::new(&payload[9..]);
        let err = WalRecord::decode_body(9, &mut r).unwrap_err();
        assert!(err.to_string().contains("invalid inner record"), "{err}");
    }

    #[test]
    fn torn_frame_is_detected_not_misparsed() {
        let frame = encode_frame(
            1,
            &WalRecord::RowGroupSealed {
                table: "t".into(),
                group: 1,
                rows: 1,
            },
        )
        .unwrap();
        for cut in 0..frame.len() {
            let stop = decode_frames(&frame[..cut], |_, _| Ok(())).unwrap();
            if cut == 0 {
                assert_eq!(stop, FrameStop::End);
            } else {
                assert!(
                    matches!(stop, FrameStop::Bad { offset: 0, .. }),
                    "cut={cut}"
                );
            }
        }
        // Flip each bit: either the CRC or a sanity bound must catch it.
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let stop = decode_frames(&bad, |_, _| Ok(())).unwrap();
            assert!(
                matches!(stop, FrameStop::Bad { .. }),
                "bit flip {bit} went undetected"
            );
        }
    }

    #[test]
    fn group_commit_batches_concurrent_writers() {
        let store = MemLogStore::new();
        let (wal, _) =
            Wal::open(Box::new(store.clone()), WalOptions::default(), None, &[]).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        wal.log_and_commit(&WalRecord::RowGroupSealed {
                            table: format!("t{i}"),
                            group: j,
                            rows: 1,
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let status = wal.status();
        assert_eq!(status.counters.records_appended, 400);
        assert_eq!(status.durable_lsn, 400);
        // Group commit means strictly fewer fsyncs than records (with 8
        // writers racing, batches > 1 are effectively certain; allow
        // equality only in the degenerate fully serialized schedule).
        assert!(status.counters.fsyncs <= status.counters.records_appended);
        // Everything must really be durable.
        let image = store.crash_image();
        let mut n = 0;
        for seg in image.segment_ids().unwrap() {
            decode_frames(&image.read(seg).unwrap(), |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(n, 400);
    }

    #[test]
    fn strict_mode_commits_inline_and_stays_durable() {
        let store = MemLogStore::new();
        let (wal, _) =
            Wal::open(Box::new(store.clone()), WalOptions::default(), None, &[]).unwrap();
        wal.set_sync_mode(WalSyncMode::Strict);
        for i in 0..20 {
            wal.log_and_commit(&WalRecord::RowGroupSealed {
                table: "t".into(),
                group: i,
                rows: 1,
            })
            .unwrap();
        }
        let status = wal.status();
        assert_eq!(status.durable_lsn, 20);
        assert_eq!(status.sync_mode, WalSyncMode::Strict);
        let image = store.crash_image();
        let mut n = 0;
        for seg in image.segment_ids().unwrap() {
            decode_frames(&image.read(seg).unwrap(), |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(n, 20);
    }

    #[test]
    fn off_mode_acks_without_waiting_and_drains_on_drop() {
        let store = MemLogStore::new();
        let (wal, _) =
            Wal::open(Box::new(store.clone()), WalOptions::default(), None, &[]).unwrap();
        wal.set_sync_mode(WalSyncMode::Off);
        for i in 0..30 {
            wal.log_and_commit(&WalRecord::RowGroupSealed {
                table: "t".into(),
                group: i,
                rows: 1,
            })
            .unwrap();
        }
        // Dropping the last handle shuts the writer down, draining any
        // buffered tail — a clean close loses nothing even in off mode.
        drop(wal);
        let image = store.crash_image();
        let mut n = 0;
        for seg in image.segment_ids().unwrap() {
            decode_frames(&image.read(seg).unwrap(), |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(n, 30);
    }

    #[test]
    fn sticky_failure_clears_only_when_storage_recovers() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        let store = MemLogStore::new();
        let faults = FaultInjector::new(7);
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            WalOptions::default(),
            Some(faults.clone()),
            &[],
        )
        .unwrap();
        // Healthy WAL: probe is a no-op.
        wal.try_clear_failure().unwrap();
        // Wedge the log: every append fails (ENOSPC-style).
        faults.arm("wal.append", FaultSpec::new(FaultKind::IoError).always());
        let rec = WalRecord::RowGroupSealed {
            table: "t".into(),
            group: 0,
            rows: 1,
        };
        assert!(wal.log_and_commit(&rec).is_err());
        assert!(wal.status().failed.is_some());
        // Logging is refused while failed.
        let err = wal.log(&rec).unwrap_err();
        assert!(err.to_string().contains("WAL is failed"), "{err}");
        // A probe while storage is still broken keeps the failure sticky.
        assert!(wal.try_clear_failure().is_err());
        assert!(wal.status().failed.is_some());
        // Storage recovers: the probe proves a durable append and clears.
        faults.disarm_all();
        wal.try_clear_failure().unwrap();
        assert!(wal.status().failed.is_none());
        wal.log_and_commit(&rec).unwrap();
    }

    /// Satellite-3 regression: a committer whose frames rode a failed
    /// flush must observe the error even if a recovery probe has since
    /// cleared the failure and pushed `durable_lsn` past its LSN.
    #[test]
    fn probe_does_not_resurrect_records_lost_in_a_failed_flush() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        let store = MemLogStore::new();
        let faults = FaultInjector::new(11);
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            WalOptions::default(),
            Some(faults.clone()),
            &[],
        )
        .unwrap();
        let rec = WalRecord::RowGroupSealed {
            table: "t".into(),
            group: 0,
            rows: 1,
        };
        // Buffer two frames, then have the flush that carries both fail
        // at the fsync: lsn1's committer has not shown up yet — it is
        // exactly the "rode another thread's failed flush" victim.
        let lsn1 = wal.log(&rec).unwrap();
        let lsn2 = wal.log(&rec).unwrap();
        faults.arm("wal.fsync", FaultSpec::new(FaultKind::IoError).always());
        assert!(wal.commit(lsn2).is_err());
        assert!(wal.status().failed.is_some());
        // Storage recovers; the probe clears the sticky failure and
        // advances the durable watermark past the lost LSNs.
        faults.disarm_all();
        wal.try_clear_failure().unwrap();
        assert!(wal.status().failed.is_none());
        assert!(wal.status().durable_lsn > lsn1);
        // The victim's commit must still fail: its frame is gone.
        let err = wal.commit(lsn1).unwrap_err();
        assert!(err.to_string().contains("lost"), "{err}");
        let err = wal.commit(lsn2).unwrap_err();
        assert!(err.to_string().contains("lost"), "{err}");
        // New work is fine.
        wal.log_and_commit(&rec).unwrap();
    }

    /// Review fix: the lost range is `(durable-at-failure, batch_max]`,
    /// not a blanket floor — a record that rode an earlier *successful*
    /// flush must keep acknowledging cleanly after a later flush fails,
    /// and must not be reported lost (its frame is on disk and replays).
    #[test]
    fn already_durable_records_survive_a_later_flush_failure() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        let store = MemLogStore::new();
        let faults = FaultInjector::new(17);
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            WalOptions::default(),
            Some(faults.clone()),
            &[],
        )
        .unwrap();
        let rec = WalRecord::RowGroupSealed {
            table: "t".into(),
            group: 0,
            rows: 1,
        };
        // lsn1 rides a successful flush.
        let lsn1 = wal.log(&rec).unwrap();
        wal.commit(lsn1).unwrap();
        assert!(wal.status().durable_lsn >= lsn1);
        // lsn2's flush fails at the fsync (armed before logging so the
        // writer cannot sneak the frame out first).
        faults.arm("wal.fsync", FaultSpec::new(FaultKind::IoError).always());
        let lsn2 = wal.log(&rec).unwrap();
        assert!(wal.commit(lsn2).is_err());
        assert!(wal.status().failed.is_some());
        // lsn1 is on disk: its committer must NOT see a spurious "lost"
        // error (the caller would treat a durable, replayable write as
        // failed — a phantom row after recovery).
        wal.commit(lsn1).unwrap();
        // After recovery the distinction persists: lsn1 acknowledges,
        // lsn2 stays lost.
        faults.disarm_all();
        wal.try_clear_failure().unwrap();
        wal.commit(lsn1).unwrap();
        let err = wal.commit(lsn2).unwrap_err();
        assert!(err.to_string().contains("lost"), "{err}");
    }

    /// Review fix: `sync_commit` (the checkpoint path) and strict-mode
    /// leaders used to flush inline while the writer thread could also
    /// be flushing — two batches racing for storage can fsync out of
    /// LSN order, and `durable_lsn = max(batch)` would then acknowledge
    /// records still sitting in an earlier, un-fsynced batch. With the
    /// flush-in-flight token every acknowledged commit must be in the
    /// crash image, even when fsync starts failing mid-run.
    #[test]
    fn acked_commits_are_durable_with_mixed_group_and_strict_flushers() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        use std::collections::HashSet;
        let store = MemLogStore::new();
        let faults = FaultInjector::new(23);
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            WalOptions::default(),
            Some(faults.clone()),
            &[],
        )
        .unwrap();
        // Let some fsyncs through, then storage dies for good.
        faults.arm(
            "wal.fsync",
            FaultSpec::new(FaultKind::IoError).after(25).always(),
        );
        let acked = Arc::new(std::sync::Mutex::new(Vec::<(u32, u32)>::new()));
        let threads: Vec<_> = (0..8u32)
            .map(|i| {
                let wal = Arc::clone(&wal);
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || {
                    for j in 0..100u32 {
                        let rec = WalRecord::RowGroupSealed {
                            table: format!("t{i}"),
                            group: j,
                            rows: 1,
                        };
                        // Threads 6 and 7 commit checkpoint-style
                        // (inline strict flush); the rest ride the
                        // writer thread's group commit.
                        let res = wal.log(&rec).and_then(|lsn| {
                            if i >= 6 {
                                wal.sync_commit(lsn)
                            } else {
                                wal.commit(lsn)
                            }
                        });
                        match res {
                            Ok(()) => acked.lock().unwrap().push((i, j)),
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let image = store.crash_image();
        let mut durable = HashSet::new();
        for seg in image.segment_ids().unwrap() {
            decode_frames(&image.read(seg).unwrap(), |_, r| {
                if let WalRecord::RowGroupSealed { table, group, .. } = r {
                    durable.insert((table, group));
                }
                Ok(())
            })
            .unwrap();
        }
        for (i, j) in acked.lock().unwrap().iter() {
            assert!(
                durable.contains(&(format!("t{i}"), *j)),
                "commit t{i}/{j} was acknowledged but is not in the crash image"
            );
        }
    }

    /// Satellite-3 concurrency coverage: when a flush fails, *every*
    /// parked committer — flusher and waiters alike — observes an error;
    /// after recovery all new commits succeed.
    #[test]
    fn all_concurrent_committers_observe_a_flush_failure() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        let store = MemLogStore::new();
        let faults = FaultInjector::new(13);
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            WalOptions::default(),
            Some(faults.clone()),
            &[],
        )
        .unwrap();
        faults.arm("wal.fsync", FaultSpec::new(FaultKind::IoError).always());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    wal.log_and_commit(&WalRecord::RowGroupSealed {
                        table: format!("t{i}"),
                        group: 0,
                        rows: 1,
                    })
                    .is_err()
                })
            })
            .collect();
        for t in threads {
            assert!(
                t.join().unwrap(),
                "a committer was acknowledged despite the failed flush"
            );
        }
        faults.disarm_all();
        wal.try_clear_failure().unwrap();
        wal.log_and_commit(&WalRecord::RowGroupSealed {
            table: "t".into(),
            group: 1,
            rows: 1,
        })
        .unwrap();
    }

    #[test]
    fn segments_rotate_and_checkpoint_retires() {
        let store = MemLogStore::new();
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            WalOptions {
                segment_bytes: 256,
                strict: false,
            },
            None,
            &[],
        )
        .unwrap();
        for i in 0..50 {
            wal.log_and_commit(&WalRecord::RowGroupSealed {
                table: "t".into(),
                group: i,
                rows: 1,
            })
            .unwrap();
        }
        let before = wal.status();
        assert!(before.segment_count > 1, "expected rotation");
        let tail = wal.tail_lsn();
        let retired = wal.checkpoint(1, vec![("t".into(), tail)]).unwrap();
        assert!(retired > 0, "expected retirement");
        let after = wal.status();
        assert!(after.segment_count < before.segment_count);
        assert_eq!(after.last_checkpoint.map(|(g, _)| g), Some(1));
    }
}
