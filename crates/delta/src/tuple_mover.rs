//! The tuple mover: a background thread that compresses closed delta
//! stores into columnar row groups.
//!
//! SQL Server runs the tuple mover as a background task that wakes
//! periodically, finds CLOSED delta row groups, and compresses them without
//! blocking readers (scans keep seeing the delta store until the compressed
//! group is installed). This implementation has the same structure: a
//! thread that ticks on an interval (or on demand via [`TupleMover::kick`])
//! and calls [`ColumnStoreTable::tuple_move_pass`], which compresses
//! outside the table lock.
//!
//! A background compressor that silently dies on the first hiccup turns a
//! transient IO stall into unbounded delta-store growth, so the mover is
//! supervised:
//!
//! * pass errors are **classified**: IO errors are *transient* (the world
//!   may recover), everything else — and a panic — is *fatal*;
//! * transient errors are retried within a per-pass **retry budget**, with
//!   bounded exponential backoff (still responsive to `stop`);
//! * a fatal outcome "restarts" the pass loop up to
//!   [`MoverConfig::max_restarts`] times before the mover parks itself in
//!   [`MoverState::Failed`] — parked, not dead, so [`TupleMover::status`]
//!   and [`TupleMover::stop`] still answer and the table keeps serving;
//! * [`TupleMover::status`] exposes a live [`MoverStatus`] snapshot:
//!   passes, stores/rows moved, retries, restarts, last error.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use cstore_common::sync::Mutex;
use cstore_common::waits::{self, WaitClass};
use cstore_common::{Error, Result};

use crate::table::{ColumnStoreTable, MovePassReport};

/// Tuning knobs of the background tuple mover.
#[derive(Clone, Debug)]
pub struct MoverConfig {
    /// Time between unsolicited passes.
    pub interval: Duration,
    /// Transient (IO) failures tolerated within one pass before the pass
    /// is declared fatal.
    pub retry_budget: u32,
    /// First retry delay; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on the retry delay.
    pub backoff_max: Duration,
    /// Fatal pass outcomes (including panics) survived before the mover
    /// parks itself in [`MoverState::Failed`].
    pub max_restarts: u32,
}

impl Default for MoverConfig {
    fn default() -> Self {
        MoverConfig {
            interval: Duration::from_millis(50),
            retry_budget: 5,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(250),
            max_restarts: 3,
        }
    }
}

/// Lifecycle state of the mover thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoverState {
    /// Passing normally (possibly mid-retry).
    Running,
    /// Gave up after exhausting restarts; parked until `stop`.
    Failed,
    /// Stopped cleanly.
    Stopped,
}

/// Point-in-time statistics of a mover, from [`TupleMover::status`].
#[derive(Clone, Debug)]
pub struct MoverStatus {
    pub state: MoverState,
    /// Successful passes completed.
    pub passes: u64,
    /// Delta stores compressed over the mover's lifetime.
    pub stores_moved: u64,
    /// Rows those stores held.
    pub rows_moved: u64,
    /// Transient errors absorbed by retries.
    pub transient_retries: u64,
    /// Fatal outcomes survived by the supervisor.
    pub restarts: u32,
    /// Fatal outcomes since the last successful pass.
    pub consecutive_failures: u32,
    /// Most recent error of any class, as text.
    pub last_error: Option<String>,
}

impl Default for MoverStatus {
    fn default() -> Self {
        MoverStatus {
            state: MoverState::Running,
            passes: 0,
            stores_moved: 0,
            rows_moved: 0,
            transient_retries: 0,
            restarts: 0,
            consecutive_failures: 0,
            last_error: None,
        }
    }
}

enum Msg {
    /// Run a pass now.
    Kick,
    /// Terminate the thread.
    Stop,
}

/// How one supervised pass (with retries) ended.
enum PassOutcome {
    Ok,
    Fatal(Error),
    StopRequested,
}

/// Handle to a running background tuple mover. Dropping the handle stops
/// the thread.
pub struct TupleMover {
    tx: Sender<Msg>,
    handle: Option<std::thread::JoinHandle<Result<usize>>>,
    status: Arc<Mutex<MoverStatus>>,
}

impl TupleMover {
    /// Start a mover over `table`, ticking every `interval`, with default
    /// fault handling. Errors when the OS refuses to spawn the thread.
    pub fn start(table: ColumnStoreTable, interval: Duration) -> Result<Self> {
        Self::start_with(
            table,
            MoverConfig {
                interval,
                ..MoverConfig::default()
            },
        )
    }

    /// Start a mover with explicit fault-handling knobs.
    pub fn start_with(table: ColumnStoreTable, config: MoverConfig) -> Result<Self> {
        let (tx, rx) = mpsc::channel();
        let status = Arc::new(Mutex::new_leveled(
            5,
            "mover.status",
            MoverStatus::default(),
        ));
        let worker = Worker {
            table,
            config,
            rx,
            status: status.clone(),
        };
        let handle = std::thread::Builder::new()
            .name("tuple-mover".into())
            .spawn(move || worker.run())
            .map_err(|e| Error::Execution(format!("cannot spawn tuple mover: {e}")))?;
        Ok(TupleMover {
            tx,
            handle: Some(handle),
            status,
        })
    }

    /// Request an immediate pass (non-blocking).
    pub fn kick(&self) {
        // lint: allow(discard) — send fails only when the worker already
        // stopped; a kick at that point is a harmless no-op
        let _ = self.tx.send(Msg::Kick);
    }

    /// A snapshot of the mover's counters and state.
    pub fn status(&self) -> MoverStatus {
        self.status.lock().clone()
    }

    /// Shared handle to the live status, for observers that do not own
    /// the mover (e.g. a database-wide metrics registry). The handle
    /// stays readable after the mover stops, holding the final snapshot.
    pub fn status_shared(&self) -> Arc<Mutex<MoverStatus>> {
        self.status.clone()
    }

    /// Stop the thread and return the total number of delta stores it
    /// compressed over its lifetime. Surfaces the fatal error if the mover
    /// ended up in [`MoverState::Failed`].
    pub fn stop(mut self) -> Result<usize> {
        // lint: allow(discard) — send fails only when the worker already
        // exited, in which case join() below still collects its result
        let _ = self.tx.send(Msg::Stop);
        match self.handle.take() {
            Some(h) => h
                .join()
                .map_err(|_| Error::Execution("tuple mover panicked".into()))?,
            None => Ok(0),
        }
    }
}

impl Drop for TupleMover {
    fn drop(&mut self) {
        // lint: allow(discard) — best-effort shutdown: the worker may have
        // already exited and its result has nowhere to go from a Drop
        let _ = self.tx.send(Msg::Stop);
        if let Some(h) = self.handle.take() {
            // lint: allow(discard) — same best-effort shutdown path
            let _ = h.join();
        }
    }
}

struct Worker {
    table: ColumnStoreTable,
    config: MoverConfig,
    rx: Receiver<Msg>,
    status: Arc<Mutex<MoverStatus>>,
}

impl Worker {
    fn run(self) -> Result<usize> {
        let mut fatal: Option<Error> = None;
        loop {
            let parked_at = std::time::Instant::now();
            let msg = self.rx.recv_timeout(self.config.interval);
            // Global-only MOVER wait (the mover thread runs no query).
            waits::observe(WaitClass::Mover, parked_at.elapsed());
            match msg {
                Ok(Msg::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                Ok(Msg::Kick) | Err(RecvTimeoutError::Timeout) => {
                    match self.pass_with_retry() {
                        PassOutcome::Ok => {}
                        PassOutcome::StopRequested => break,
                        PassOutcome::Fatal(e) => {
                            let failures = {
                                let mut st = self.status.lock();
                                st.consecutive_failures += 1;
                                st.last_error = Some(e.to_string());
                                st.consecutive_failures
                            };
                            if failures > self.config.max_restarts {
                                // Out of restarts: park (still answering
                                // status/stop) rather than dying silently.
                                self.status.lock().state = MoverState::Failed;
                                fatal = Some(e);
                                self.park_until_stop();
                                break;
                            }
                            self.status.lock().restarts += 1;
                        }
                    }
                }
            }
        }
        let mut st = self.status.lock();
        if st.state != MoverState::Failed {
            st.state = MoverState::Stopped;
        }
        let moved = usize::try_from(st.stores_moved).unwrap_or(usize::MAX);
        drop(st);
        match fatal {
            Some(e) => Err(e),
            None => Ok(moved),
        }
    }

    /// One pass, retrying transient errors within the budget.
    fn pass_with_retry(&self) -> PassOutcome {
        let mut backoff = self.config.backoff_base;
        let mut retries = 0u32;
        loop {
            match self.one_pass() {
                Ok(report) => {
                    let mut st = self.status.lock();
                    st.passes += 1;
                    st.stores_moved += report.stores as u64;
                    st.rows_moved += report.rows as u64;
                    st.consecutive_failures = 0;
                    return PassOutcome::Ok;
                }
                Err(e) if Self::is_transient(&e) && retries < self.config.retry_budget => {
                    retries += 1;
                    {
                        let mut st = self.status.lock();
                        st.transient_retries += 1;
                        st.last_error = Some(e.to_string());
                    }
                    // Back off via the channel so a Stop interrupts the wait.
                    let parked_at = std::time::Instant::now();
                    let msg = self.rx.recv_timeout(backoff);
                    waits::observe(WaitClass::Mover, parked_at.elapsed());
                    match msg {
                        Ok(Msg::Stop) | Err(RecvTimeoutError::Disconnected) => {
                            return PassOutcome::StopRequested;
                        }
                        Ok(Msg::Kick) | Err(RecvTimeoutError::Timeout) => {}
                    }
                    backoff = (backoff * 2).min(self.config.backoff_max);
                }
                Err(e) => return PassOutcome::Fatal(e),
            }
        }
    }

    /// Run one pass, converting a panic into a fatal error so a poisoned
    /// encoder cannot kill the supervisor thread.
    fn one_pass(&self) -> Result<MovePassReport> {
        match catch_unwind(AssertUnwindSafe(|| self.table.tuple_move_pass())) {
            Ok(r) => r,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(Error::Execution(format!(
                    "tuple mover pass panicked: {msg}"
                )))
            }
        }
    }

    /// IO errors are transient (the disk may come back); corruption and
    /// execution errors are not.
    fn is_transient(e: &Error) -> bool {
        matches!(e, Error::Io(_))
    }

    /// Failed terminally: wait for Stop so the handle's `stop()`/`status()`
    /// keep working instead of the thread vanishing.
    fn park_until_stop(&self) {
        loop {
            match self.rx.recv() {
                Ok(Msg::Stop) | Err(_) => return,
                Ok(Msg::Kick) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableConfig;
    use cstore_common::fault::{FaultInjector, FaultKind, FaultSpec};
    use cstore_common::{DataType, Field, Row, Schema, Value};
    use cstore_storage::SortMode;

    fn table(delta_capacity: usize) -> ColumnStoreTable {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity,
                bulk_load_threshold: 1 << 30,
                max_rowgroup_rows: 1 << 20,
                sort_mode: SortMode::None,
            },
        )
    }

    #[test]
    fn background_mover_drains_closed_deltas() {
        let t = table(100);
        let mover = TupleMover::start(t.clone(), Duration::from_millis(2)).unwrap();
        for i in 0..1050 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        // Wait (bounded) for the mover to catch up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = mover.status();
        assert_eq!(status.state, MoverState::Running);
        let moved = mover.stop().unwrap();
        assert!(moved >= 10, "mover compressed {moved} stores");
        let s = t.stats();
        assert_eq!(s.n_closed_deltas, 0);
        assert_eq!(s.compressed_rows, 1000);
        assert_eq!(t.total_rows(), 1050);
    }

    #[test]
    fn kick_triggers_immediate_pass() {
        let t = table(10);
        // Long interval: only the kick can drain in time.
        let mover = TupleMover::start(t.clone(), Duration::from_secs(60)).unwrap();
        for i in 0..25 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        assert_eq!(t.stats().n_closed_deltas, 2);
        mover.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.stats().n_closed_deltas, 0);
        mover.stop().unwrap();
    }

    #[test]
    fn status_counts_rows_and_passes() {
        let t = table(10);
        let mover = TupleMover::start(t.clone(), Duration::from_secs(60)).unwrap();
        for i in 0..35 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        mover.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = mover.status();
        assert!(status.passes >= 1);
        assert_eq!(status.stores_moved, 3);
        assert_eq!(status.rows_moved, 30);
        assert_eq!(status.transient_retries, 0);
        assert_eq!(status.restarts, 0);
        mover.stop().unwrap();
    }

    #[test]
    fn transient_faults_are_retried_within_budget() {
        let t = table(10);
        let faults = FaultInjector::new(7);
        t.set_fault_injector(faults.clone());
        for i in 0..25 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        // 3 transient IO errors, budget 5: the pass must still complete.
        faults.arm("mover.pass", FaultSpec::new(FaultKind::IoError).times(3));
        let mover = TupleMover::start_with(
            t.clone(),
            MoverConfig {
                interval: Duration::from_millis(2),
                retry_budget: 5,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(4),
                max_restarts: 0,
            },
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = mover.status();
        assert_eq!(status.state, MoverState::Running);
        assert_eq!(status.transient_retries, 3);
        assert_eq!(status.restarts, 0);
        assert!(status.last_error.unwrap().contains("injected IO fault"));
        mover.stop().unwrap();
        assert_eq!(t.total_rows(), 25);
    }

    #[test]
    fn fatal_faults_exhaust_restarts_and_park() {
        let t = table(10);
        let faults = FaultInjector::new(8);
        t.set_fault_injector(faults.clone());
        for i in 0..25 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        // BitFlip maps to a Storage error: fatal class, never retried.
        faults.arm("mover.pass", FaultSpec::new(FaultKind::BitFlip).always());
        let mover = TupleMover::start_with(
            t.clone(),
            MoverConfig {
                interval: Duration::from_millis(1),
                retry_budget: 2,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(2),
                max_restarts: 2,
            },
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mover.status().state != MoverState::Failed && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let status = mover.status();
        assert_eq!(status.state, MoverState::Failed);
        assert_eq!(
            status.restarts, 2,
            "supervisor restarted max_restarts times"
        );
        assert_eq!(status.consecutive_failures, 3);
        // The table still serves while the mover is parked.
        t.insert(Row::new(vec![Value::Int64(100)])).unwrap();
        assert_eq!(t.total_rows(), 26);
        let err = mover.stop().unwrap_err();
        assert!(err.to_string().contains("BitFlip"), "got: {err}");
    }
}
