//! The tuple mover: a background thread that compresses closed delta
//! stores into columnar row groups.
//!
//! SQL Server runs the tuple mover as a background task that wakes
//! periodically, finds CLOSED delta row groups, and compresses them without
//! blocking readers (scans keep seeing the delta store until the compressed
//! group is installed). This implementation has the same structure: a
//! thread that ticks on an interval (or on demand via [`TupleMover::kick`])
//! and calls [`ColumnStoreTable::tuple_move_once`], which compresses
//! outside the table lock.

use std::time::Duration;

use crossbeam::channel::{self, Sender};

use crate::table::ColumnStoreTable;

enum Msg {
    /// Run a pass now.
    Kick,
    /// Terminate the thread.
    Stop,
}

/// Handle to a running background tuple mover. Dropping the handle stops
/// the thread.
pub struct TupleMover {
    tx: Sender<Msg>,
    handle: Option<std::thread::JoinHandle<usize>>,
}

impl TupleMover {
    /// Start a mover over `table`, ticking every `interval`.
    pub fn start(table: ColumnStoreTable, interval: Duration) -> Self {
        let (tx, rx) = channel::unbounded();
        let handle = std::thread::Builder::new()
            .name("tuple-mover".into())
            .spawn(move || {
                let mut total_moved = 0usize;
                loop {
                    match rx.recv_timeout(interval) {
                        Ok(Msg::Stop) => break,
                        Ok(Msg::Kick) | Err(channel::RecvTimeoutError::Timeout) => {
                            // Compression failures here would mean a bug in
                            // the encoder; surface loudly rather than spin.
                            total_moved +=
                                table.tuple_move_once().expect("tuple mover pass failed");
                        }
                        Err(channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
                total_moved
            })
            .expect("spawn tuple mover");
        TupleMover {
            tx,
            handle: Some(handle),
        }
    }

    /// Request an immediate pass (non-blocking).
    pub fn kick(&self) {
        let _ = self.tx.send(Msg::Kick);
    }

    /// Stop the thread and return the total number of delta stores it
    /// compressed over its lifetime.
    pub fn stop(mut self) -> usize {
        let _ = self.tx.send(Msg::Stop);
        self.handle
            .take()
            .map(|h| h.join().expect("tuple mover panicked"))
            .unwrap_or(0)
    }
}

impl Drop for TupleMover {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableConfig;
    use cstore_common::{DataType, Field, Row, Schema, Value};
    use cstore_storage::SortMode;

    #[test]
    fn background_mover_drains_closed_deltas() {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 100,
                bulk_load_threshold: 1 << 30,
                max_rowgroup_rows: 1 << 20,
                sort_mode: SortMode::None,
            },
        );
        let mover = TupleMover::start(t.clone(), Duration::from_millis(2));
        for i in 0..1050 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        // Wait (bounded) for the mover to catch up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let moved = mover.stop();
        assert!(moved >= 10, "mover compressed {moved} stores");
        let s = t.stats();
        assert_eq!(s.n_closed_deltas, 0);
        assert_eq!(s.compressed_rows, 1000);
        assert_eq!(t.total_rows(), 1050);
    }

    #[test]
    fn kick_triggers_immediate_pass() {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 10,
                bulk_load_threshold: 1 << 30,
                max_rowgroup_rows: 1 << 20,
                sort_mode: SortMode::None,
            },
        );
        // Long interval: only the kick can drain in time.
        let mover = TupleMover::start(t.clone(), Duration::from_secs(60));
        for i in 0..25 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        assert_eq!(t.stats().n_closed_deltas, 2);
        mover.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.stats().n_closed_deltas, 0);
        mover.stop();
    }
}
