//! The tuple mover: a background thread that compresses closed delta
//! stores into columnar row groups.
//!
//! SQL Server runs the tuple mover as a background task that wakes
//! periodically, finds CLOSED delta row groups, and compresses them without
//! blocking readers (scans keep seeing the delta store until the compressed
//! group is installed). This implementation has the same structure: a
//! thread that ticks on an interval (or on demand via [`TupleMover::kick`])
//! and calls [`ColumnStoreTable::tuple_move_once`], which compresses
//! outside the table lock.

use std::time::Duration;

use std::sync::mpsc::{self, RecvTimeoutError, Sender};

use cstore_common::{Error, Result};

use crate::table::ColumnStoreTable;

enum Msg {
    /// Run a pass now.
    Kick,
    /// Terminate the thread.
    Stop,
}

/// Handle to a running background tuple mover. Dropping the handle stops
/// the thread.
pub struct TupleMover {
    tx: Sender<Msg>,
    handle: Option<std::thread::JoinHandle<Result<usize>>>,
}

impl TupleMover {
    /// Start a mover over `table`, ticking every `interval`. Errors when
    /// the OS refuses to spawn the worker thread.
    pub fn start(table: ColumnStoreTable, interval: Duration) -> Result<Self> {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("tuple-mover".into())
            .spawn(move || {
                let mut total_moved = 0usize;
                loop {
                    match rx.recv_timeout(interval) {
                        Ok(Msg::Stop) => break,
                        Ok(Msg::Kick) | Err(RecvTimeoutError::Timeout) => {
                            // A compression failure means an encoder bug:
                            // stop the thread and hand the error to stop()
                            // rather than spinning on it.
                            total_moved += table.tuple_move_once()?;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                Ok(total_moved)
            })
            .map_err(|e| Error::Execution(format!("cannot spawn tuple mover: {e}")))?;
        Ok(TupleMover {
            tx,
            handle: Some(handle),
        })
    }

    /// Request an immediate pass (non-blocking).
    pub fn kick(&self) {
        // lint: allow(discard) — send fails only when the worker already
        // stopped; a kick at that point is a harmless no-op
        let _ = self.tx.send(Msg::Kick);
    }

    /// Stop the thread and return the total number of delta stores it
    /// compressed over its lifetime. Surfaces any compression error the
    /// background passes hit.
    pub fn stop(mut self) -> Result<usize> {
        // lint: allow(discard) — send fails only when the worker already
        // exited, in which case join() below still collects its result
        let _ = self.tx.send(Msg::Stop);
        match self.handle.take() {
            Some(h) => h
                .join()
                .map_err(|_| Error::Execution("tuple mover panicked".into()))?,
            None => Ok(0),
        }
    }
}

impl Drop for TupleMover {
    fn drop(&mut self) {
        // lint: allow(discard) — best-effort shutdown: the worker may have
        // already exited and its result has nowhere to go from a Drop
        let _ = self.tx.send(Msg::Stop);
        if let Some(h) = self.handle.take() {
            // lint: allow(discard) — same best-effort shutdown path
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableConfig;
    use cstore_common::{DataType, Field, Row, Schema, Value};
    use cstore_storage::SortMode;

    #[test]
    fn background_mover_drains_closed_deltas() {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 100,
                bulk_load_threshold: 1 << 30,
                max_rowgroup_rows: 1 << 20,
                sort_mode: SortMode::None,
            },
        );
        let mover = TupleMover::start(t.clone(), Duration::from_millis(2)).unwrap();
        for i in 0..1050 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        // Wait (bounded) for the mover to catch up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let moved = mover.stop().unwrap();
        assert!(moved >= 10, "mover compressed {moved} stores");
        let s = t.stats();
        assert_eq!(s.n_closed_deltas, 0);
        assert_eq!(s.compressed_rows, 1000);
        assert_eq!(t.total_rows(), 1050);
    }

    #[test]
    fn kick_triggers_immediate_pass() {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 10,
                bulk_load_threshold: 1 << 30,
                max_rowgroup_rows: 1 << 20,
                sort_mode: SortMode::None,
            },
        );
        // Long interval: only the kick can drain in time.
        let mover = TupleMover::start(t.clone(), Duration::from_secs(60)).unwrap();
        for i in 0..25 {
            t.insert(Row::new(vec![Value::Int64(i)])).unwrap();
        }
        assert_eq!(t.stats().n_closed_deltas, 2);
        mover.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while t.stats().n_closed_deltas > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.stats().n_closed_deltas, 0);
        mover.stop().unwrap();
    }
}
