//! Consistent read snapshots of a columnstore table.
//!
//! A snapshot is cheap: compressed row groups share their segments via
//! `Arc`, the delete bitmap is copied (bits only), and delta rows are
//! materialized (delta stores are small by construction). Scans over a
//! snapshot are unaffected by concurrent writes.

use cstore_common::{Bitmap, Row, RowGroupId, RowId, Schema};
use cstore_storage::pred::ColumnPred;
use cstore_storage::CompressedRowGroup;

use crate::delete_bitmap::DeleteBitmap;

/// A point-in-time view of one table.
#[derive(Clone)]
pub struct TableSnapshot {
    schema: Schema,
    groups: Vec<CompressedRowGroup>,
    delta_rows: Vec<(RowId, Row)>,
    deleted: DeleteBitmap,
}

impl TableSnapshot {
    pub fn new(
        schema: Schema,
        groups: Vec<CompressedRowGroup>,
        delta_rows: Vec<(RowId, Row)>,
        deleted: DeleteBitmap,
    ) -> Self {
        TableSnapshot {
            schema,
            groups,
            delta_rows,
            deleted,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Compressed row groups visible in this snapshot.
    pub fn groups(&self) -> &[CompressedRowGroup] {
        &self.groups
    }

    pub fn group_by_id(&self, id: RowGroupId) -> Option<&CompressedRowGroup> {
        self.groups.iter().find(|g| g.id() == id)
    }

    /// Delta rows (row-format tail) visible in this snapshot.
    pub fn delta_rows(&self) -> &[(RowId, Row)] {
        &self.delta_rows
    }

    pub fn deleted(&self) -> &DeleteBitmap {
        &self.deleted
    }

    /// Visible rows: compressed − deleted + delta.
    pub fn total_visible_rows(&self) -> usize {
        let compressed: usize = self.groups.iter().map(|g| g.n_rows()).sum();
        compressed - self.deleted.total_deleted() + self.delta_rows.len()
    }

    /// The qualifying-rows bitmap for a compressed group: all rows except
    /// deleted ones. Scans start from this and AND in predicate results.
    pub fn visible_bitmap(&self, group: &CompressedRowGroup) -> Bitmap {
        let mut b = Bitmap::ones(group.n_rows());
        self.deleted.mask_qualifying(group.id(), &mut b);
        b
    }

    /// A snapshot covering only every `k`-th compressed row group
    /// (offset `i`), for partitioned parallel scans. Delta rows ride with
    /// partition 0 only, so the partitions together cover the table
    /// exactly once.
    pub fn partition(&self, i: usize, k: usize) -> TableSnapshot {
        assert!(k > 0 && i < k);
        TableSnapshot {
            schema: self.schema.clone(),
            groups: self
                .groups
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx % k == i)
                .map(|(_, g)| g.clone())
                .collect(),
            delta_rows: if i == 0 {
                self.delta_rows.clone()
            } else {
                Vec::new()
            },
            deleted: self.deleted.clone(),
        }
    }

    /// Row-group ids surviving segment elimination under `preds`
    /// (delta rows are never eliminated — they have no segment metadata).
    pub fn surviving_groups(&self, preds: &[(usize, ColumnPred)]) -> Vec<RowGroupId> {
        self.groups
            .iter()
            .filter(|g| g.may_match(preds))
            .map(|g| g.id())
            .collect()
    }

    /// Full row-at-a-time scan merging compressed and delta rows, skipping
    /// deleted rows. This is the row-mode baseline path; batch mode scans
    /// segments directly (see `cstore-exec`).
    pub fn scan_rows(&self) -> impl Iterator<Item = Row> + '_ {
        let compressed = self.groups.iter().flat_map(move |g| {
            let visible = self.visible_bitmap(g);
            // Decode all columns once per group, then emit visible rows.
            let segs: Vec<_> = (0..g.n_columns())
                // lint: allow(unwrap) — snapshot groups are immutable and
                // were validated when they were compressed
                .map(|c| g.open_segment(c).expect("segment readable"))
                .collect();
            visible
                .to_indices()
                .into_iter()
                .map(move |t| {
                    Row::new(
                        segs.iter()
                            .map(|s| s.value_at(t as usize))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        });
        compressed.chain(self.delta_rows.iter().map(|(_, r)| r.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnStoreTable, TableConfig};
    use cstore_common::{DataType, Field, Value};
    use cstore_storage::pred::CmpOp;
    use cstore_storage::SortMode;

    fn table_with_data() -> ColumnStoreTable {
        let schema = Schema::new(vec![Field::not_null("k", DataType::Int64)]);
        let t = ColumnStoreTable::new(
            schema,
            TableConfig {
                delta_capacity: 50,
                bulk_load_threshold: 100,
                max_rowgroup_rows: 100,
                sort_mode: SortMode::None,
            },
        );
        t.bulk_insert(
            &(0..300)
                .map(|i| Row::new(vec![Value::Int64(i)]))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        t.insert(Row::new(vec![Value::Int64(1000)])).unwrap();
        t
    }

    #[test]
    fn snapshot_isolated_from_later_writes() {
        let t = table_with_data();
        let snap = t.snapshot();
        let before = snap.total_visible_rows();
        t.insert(Row::new(vec![Value::Int64(2000)])).unwrap();
        t.delete(RowId::new(RowGroupId(0), 0)).unwrap();
        assert_eq!(snap.total_visible_rows(), before);
        assert_eq!(snap.scan_rows().count(), before);
    }

    #[test]
    fn surviving_groups_skips_by_minmax() {
        let t = table_with_data();
        let snap = t.snapshot();
        let preds = vec![(
            0usize,
            ColumnPred::Cmp {
                op: CmpOp::Ge,
                value: Value::Int64(250),
            },
        )];
        // Groups are [0..100), [100..200), [200..300): only the last survives.
        assert_eq!(snap.surviving_groups(&preds).len(), 1);
    }

    #[test]
    fn visible_bitmap_excludes_deleted() {
        let t = table_with_data();
        t.delete(RowId::new(RowGroupId(1), 5)).unwrap();
        let snap = t.snapshot();
        let g = snap.group_by_id(RowGroupId(1)).unwrap();
        let vis = snap.visible_bitmap(g);
        assert_eq!(vis.count_ones(), 99);
        assert!(!vis.get(5));
    }
}
