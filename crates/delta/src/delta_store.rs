//! Delta stores: uncompressed row groups backed by a B+tree.
//!
//! Trickle inserts land in the table's *open* delta store. When a delta
//! store reaches capacity it is *closed*; the tuple mover later compresses
//! closed delta stores into columnar row groups. Deletes of delta-store
//! rows remove the row from the B+tree directly (no delete-bitmap entry),
//! exactly as in the paper.

use cstore_common::{Result, Row, RowGroupId, RowId, Schema};

use crate::btree::BTree;

/// Lifecycle state of a delta store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaState {
    /// Accepting inserts.
    Open,
    /// Full; waiting for the tuple mover.
    Closed,
}

/// One delta store (an uncompressed row group).
pub struct DeltaStore {
    id: RowGroupId,
    rows: BTree<Row>,
    state: DeltaState,
    /// Next tuple id; never reused, so RowIds stay unique even after
    /// deletes.
    next_tuple: u32,
    capacity: usize,
    approx_bytes: usize,
}

impl DeltaStore {
    pub fn new(id: RowGroupId, capacity: usize) -> Self {
        DeltaStore {
            id,
            rows: BTree::new(),
            state: DeltaState::Open,
            next_tuple: 0,
            capacity,
            approx_bytes: 0,
        }
    }

    pub fn id(&self) -> RowGroupId {
        self.id
    }

    pub fn state(&self) -> DeltaState {
        self.state
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate heap bytes held by rows (delta stores are the
    /// uncompressed, row-format part of the index — this is what the
    /// storage-overhead experiments report).
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Whether this store has reached capacity (and should be closed).
    pub fn is_full(&self) -> bool {
        self.next_tuple as usize >= self.capacity
    }

    /// Mark closed (no more inserts).
    pub fn close(&mut self) {
        self.state = DeltaState::Closed;
    }

    /// Insert a row, returning its RowId. The row must already be
    /// schema-checked by the table.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        debug_assert_eq!(
            self.state,
            DeltaState::Open,
            "insert into closed delta store"
        );
        let rid = RowId::new(self.id, self.next_tuple);
        self.next_tuple += 1;
        self.approx_bytes += row.approx_bytes();
        self.rows.insert(rid.pack(), row);
        Ok(rid)
    }

    /// Remove a row by id; returns it if present.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        debug_assert_eq!(rid.group, self.id);
        let row = self.rows.remove(rid.pack())?;
        self.approx_bytes -= row.approx_bytes();
        Some(row)
    }

    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(rid.pack())
    }

    /// Iterate rows in RowId order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.rows.iter().map(|(k, v)| (RowId::unpack(k), v))
    }

    /// Materialize all rows column-wise (tuple-mover path): returns
    /// per-column value vectors matching `schema`.
    pub fn to_columns(&self, schema: &Schema) -> Vec<Vec<cstore_common::Value>> {
        let mut cols: Vec<Vec<cstore_common::Value>> = (0..schema.len())
            .map(|_| Vec::with_capacity(self.rows.len()))
            .collect();
        for (_, row) in self.rows.iter() {
            for (c, v) in cols.iter_mut().zip(row.values()) {
                c.push(v.clone());
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int64(i), Value::str(format!("r{i}"))])
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut d = DeltaStore::new(RowGroupId(9), 100);
        let a = d.insert(row(1)).unwrap();
        let b = d.insert(row(2)).unwrap();
        assert_eq!(a, RowId::new(RowGroupId(9), 0));
        assert_eq!(b, RowId::new(RowGroupId(9), 1));
        assert_eq!(d.len(), 2);
        assert!(d.approx_bytes() > 0);
    }

    #[test]
    fn delete_removes_and_ids_not_reused() {
        let mut d = DeltaStore::new(RowGroupId(0), 100);
        let a = d.insert(row(1)).unwrap();
        assert!(d.delete(a).is_some());
        assert!(d.delete(a).is_none());
        let b = d.insert(row(2)).unwrap();
        assert_ne!(a, b, "tuple ids must not be reused");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn fills_and_closes() {
        let mut d = DeltaStore::new(RowGroupId(0), 3);
        for i in 0..3 {
            d.insert(row(i)).unwrap();
        }
        assert!(d.is_full());
        d.close();
        assert_eq!(d.state(), DeltaState::Closed);
    }

    #[test]
    fn iter_in_rowid_order() {
        let mut d = DeltaStore::new(RowGroupId(0), 100);
        for i in 0..10 {
            d.insert(row(i)).unwrap();
        }
        let ids: Vec<u32> = d.iter().map(|(rid, _)| rid.tuple).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn to_columns_shape() {
        use cstore_common::{DataType, Field, Schema};
        let schema = Schema::new(vec![
            Field::not_null("a", DataType::Int64),
            Field::not_null("b", DataType::Utf8),
        ]);
        let mut d = DeltaStore::new(RowGroupId(0), 100);
        for i in 0..5 {
            d.insert(row(i)).unwrap();
        }
        let cols = d.to_columns(&schema);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 5);
        assert_eq!(cols[0][3], Value::Int64(3));
    }
}
