//! The delete bitmap.
//!
//! Deleting a row that lives in a *compressed* row group cannot touch the
//! encoded segments; instead the row is marked in a per-table delete
//! bitmap and scans filter marked rows out. (Rows in delta stores are
//! deleted from the B+tree directly and never appear here.)

use cstore_common::{Bitmap, FxHashMap, RowGroupId, RowId};

/// Deleted-row marks for all compressed row groups of one table.
#[derive(Clone, Debug, Default)]
pub struct DeleteBitmap {
    groups: FxHashMap<RowGroupId, Bitmap>,
    total: usize,
}

impl DeleteBitmap {
    pub fn new() -> Self {
        DeleteBitmap::default()
    }

    /// Mark `rid` deleted. Returns `false` if it was already marked.
    pub fn delete(&mut self, rid: RowId) -> bool {
        let bm = self.groups.entry(rid.group).or_default();
        let was = bm.set_grow(rid.tuple as usize);
        if !was {
            self.total += 1;
        }
        !was
    }

    pub fn is_deleted(&self, rid: RowId) -> bool {
        self.groups
            .get(&rid.group)
            .is_some_and(|b| (rid.tuple as usize) < b.len() && b.get(rid.tuple as usize))
    }

    /// Total marked rows across all groups.
    pub fn total_deleted(&self) -> usize {
        self.total
    }

    /// Marked rows within one group.
    pub fn deleted_in_group(&self, group: RowGroupId) -> usize {
        self.groups.get(&group).map_or(0, |b| b.count_ones())
    }

    /// The group's bitmap, if any row in it is marked.
    pub fn group_bitmap(&self, group: RowGroupId) -> Option<&Bitmap> {
        self.groups.get(&group)
    }

    /// Drop all marks for `group` (after the group is rebuilt/removed).
    pub fn clear_group(&mut self, group: RowGroupId) {
        if let Some(b) = self.groups.remove(&group) {
            self.total -= b.count_ones();
        }
    }

    /// Apply the delete marks of `group` to a qualifying-rows bitmap of
    /// `n_rows` bits: clears the bit of every deleted row.
    pub fn mask_qualifying(&self, group: RowGroupId, qualifying: &mut Bitmap) {
        if let Some(marks) = self.groups.get(&group) {
            for idx in marks.iter_ones() {
                if idx < qualifying.len() {
                    qualifying.clear(idx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(g: u32, t: u32) -> RowId {
        RowId::new(RowGroupId(g), t)
    }

    #[test]
    fn delete_and_query() {
        let mut d = DeleteBitmap::new();
        assert!(!d.is_deleted(rid(0, 5)));
        assert!(d.delete(rid(0, 5)));
        assert!(d.is_deleted(rid(0, 5)));
        assert!(!d.delete(rid(0, 5)), "double delete reports false");
        assert_eq!(d.total_deleted(), 1);
        assert!(d.delete(rid(1, 0)));
        assert_eq!(d.total_deleted(), 2);
        assert_eq!(d.deleted_in_group(RowGroupId(0)), 1);
    }

    #[test]
    fn clear_group_resets() {
        let mut d = DeleteBitmap::new();
        d.delete(rid(0, 1));
        d.delete(rid(0, 2));
        d.delete(rid(1, 1));
        d.clear_group(RowGroupId(0));
        assert_eq!(d.total_deleted(), 1);
        assert!(!d.is_deleted(rid(0, 1)));
        assert!(d.is_deleted(rid(1, 1)));
    }

    #[test]
    fn mask_qualifying_clears_deleted() {
        let mut d = DeleteBitmap::new();
        d.delete(rid(0, 1));
        d.delete(rid(0, 3));
        d.delete(rid(0, 9)); // beyond qualifying length: ignored
        let mut q = Bitmap::ones(5);
        d.mask_qualifying(RowGroupId(0), &mut q);
        assert_eq!(q.to_indices(), vec![0, 2, 4]);
        // Group with no marks: untouched.
        let mut q2 = Bitmap::ones(3);
        d.mask_qualifying(RowGroupId(7), &mut q2);
        assert_eq!(q2.count_ones(), 3);
    }
}
