//! The updatable clustered columnstore table.
//!
//! This is the paper's headline enhancement: a column store index that is
//! the *base storage* of the table and supports inserts, deletes, updates
//! and bulk loads:
//!
//! * trickle **inserts** go to the open [`DeltaStore`]; a full delta store
//!   is closed and later compressed by the tuple mover;
//! * **bulk loads** at or above `bulk_load_threshold` rows bypass delta
//!   stores and compress directly (the trailing partial chunk below the
//!   threshold goes to the delta store);
//! * **deletes** of compressed rows mark the [`DeleteBitmap`]; deletes of
//!   delta rows remove them from the B+tree;
//! * **updates** are delete + insert;
//! * scans read a [`TableSnapshot`] that merges compressed row groups
//!   (minus deleted rows) with delta-store rows.

use std::sync::Arc;
use std::time::Instant;

use cstore_common::governor::Governor;
use cstore_common::sync::RwLock;

use cstore_common::{convert, Error, FaultInjector, Result, Row, RowGroupId, RowId, Schema, Value};
use cstore_storage::builder::RowGroupBuilder;
use cstore_storage::{BlobQuarantine, ColumnStore, QuarantinedKind, SortMode};

use crate::delete_bitmap::DeleteBitmap;
use crate::delta_store::DeltaStore;
use crate::snapshot::TableSnapshot;
use crate::wal::{ReplayDelete, TxnApplyOp, Wal, WalHandle, WalRecord};

/// Tuning knobs of a columnstore table.
#[derive(Clone, Debug)]
pub struct TableConfig {
    /// Rows per delta store before it closes (paper/product: ~1M).
    pub delta_capacity: usize,
    /// Minimum batch size for a bulk load to bypass the delta store
    /// (product default: 102,400 rows).
    pub bulk_load_threshold: usize,
    /// Maximum rows per compressed row group (~1M).
    pub max_rowgroup_rows: usize,
    /// Row-reordering policy for compression.
    pub sort_mode: SortMode,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            delta_capacity: 1 << 20,
            bulk_load_threshold: 102_400,
            max_rowgroup_rows: 1 << 20,
            sort_mode: SortMode::default(),
        }
    }
}

/// Outcome of a bulk load.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BulkLoadReport {
    /// Row groups created directly (bypassing delta stores).
    pub compressed_groups: Vec<RowGroupId>,
    /// Rows that fell below the threshold and went to the delta store.
    pub delta_rows: usize,
}

/// Rows per `InsertBatch` WAL frame: batched statements are chunked so
/// one frame stays well under the WAL's 64 MB frame limit while still
/// amortizing the commit across the whole statement.
const WAL_BATCH_ROWS: usize = 4096;

/// Point-in-time statistics of a table.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    pub compressed_rows: usize,
    pub deleted_rows: usize,
    pub delta_rows: usize,
    pub n_compressed_groups: usize,
    pub n_open_deltas: usize,
    pub n_closed_deltas: usize,
    /// Encoded bytes of the compressed portion.
    pub compressed_bytes: usize,
    /// Approximate bytes held by delta stores.
    pub delta_bytes: usize,
}

/// One delta store as seen by [`ColumnStoreTable::introspect`].
#[derive(Clone, Debug)]
pub struct DeltaStoreIntrospection {
    pub id: RowGroupId,
    pub rows: usize,
    pub approx_bytes: usize,
}

/// A consistent point-in-time view of a table's physical state for the
/// `sys.*` introspection views, captured under a single read lock.
#[derive(Clone)]
pub struct TableIntrospection {
    pub schema: Schema,
    /// The open (accepting inserts) delta store, if any.
    pub open: Option<DeltaStoreIntrospection>,
    /// Closed delta stores awaiting the tuple mover.
    pub closed: Vec<DeltaStoreIntrospection>,
    /// Compressed row groups (`Arc`-shared segment handles).
    pub groups: Vec<cstore_storage::CompressedRowGroup>,
    /// Deleted-row count per entry of `groups`, from the delete bitmap in
    /// the same critical section.
    pub deleted_rows: Vec<usize>,
    /// Per-column global dictionaries (None where the column has none).
    pub global_dicts: Vec<Option<std::sync::Arc<cstore_storage::encode::Dictionary>>>,
}

/// Outcome of one tuple-mover pass over the closed delta stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MovePassReport {
    /// Closed delta stores compressed into row groups.
    pub stores: usize,
    /// Rows those stores held.
    pub rows: usize,
}

struct Inner {
    cs: ColumnStore,
    open: Option<DeltaStore>,
    closed: Vec<DeltaStore>,
    deleted: DeleteBitmap,
    config: TableConfig,
    /// Chaos hook: when set, tuple-mover passes consult the injector at
    /// the `mover.pass` point before touching any data.
    faults: Option<FaultInjector>,
    /// WAL wiring: when set, every mutation logs a record under this
    /// guard (buffered) and commits after the guard is released.
    wal: Option<WalHandle>,
    /// Watermark: every WAL record for this table with an LSN at or below
    /// this value is reflected in the table's state. Persisted with the
    /// delta blob so replay after a crash skips already-saved records.
    last_lsn: u64,
    /// Resource governor: trickle inserts consult its backpressure gate,
    /// and delta-store bytes are charged to its shared memory ledger.
    governor: Option<Arc<Governor>>,
    /// Delta bytes currently charged to the governor's ledger; kept in
    /// sync with the stores' `approx_bytes` by [`Inner::sync_delta_charge`].
    delta_charged: usize,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(gov) = &self.governor {
            gov.ledger().uncharge(self.delta_charged as u64);
        }
    }
}

impl Inner {
    /// Buffer a WAL record for this table (must be called with the write
    /// guard held so LSN order matches application order). Returns the
    /// commit obligation to resolve *after* releasing the guard.
    fn wal_log(&mut self, record: &WalRecord) -> Result<Option<(Arc<Wal>, u64)>> {
        let Some(h) = &self.wal else { return Ok(None) };
        let lsn = h.wal.log(record)?;
        self.last_lsn = lsn;
        Ok(Some((Arc::clone(&h.wal), lsn)))
    }

    /// Find and remove the row for a value-verified delete: the exact
    /// `rid` when the resident row's values still equal `expected`, else
    /// the first row equal to `expected` anywhere in the table. Row ids
    /// are not stable — the tuple mover renumbers rows positionally when
    /// it compresses a delta store with holes, and replay reassigns ids
    /// wholesale — so a bare rid can alias an unrelated row. Returns the
    /// rid actually deleted (with the row, for WAL logging), or `None`
    /// if no matching row is live.
    fn delete_matching(&mut self, rid: RowId, expected: &Row) -> Result<Option<(RowId, Row)>> {
        // Exact row-id match first, values verified.
        if let Some(d) = self.open.as_mut().filter(|d| d.id() == rid.group) {
            if d.get(rid).is_some_and(|r| r == expected) {
                if let Some(row) = d.delete(rid) {
                    return Ok(Some((rid, row)));
                }
            }
        }
        if let Some(d) = self.closed.iter_mut().find(|d| d.id() == rid.group) {
            if d.get(rid).is_some_and(|r| r == expected) {
                if let Some(row) = d.delete(rid) {
                    return Ok(Some((rid, row)));
                }
            }
        }
        if let Some(g) = self.cs.group_by_id(rid.group) {
            if (rid.tuple as usize) < g.n_rows()
                && !self.deleted.is_deleted(rid)
                && Row::new(g.row_values(rid.tuple as usize)?) == *expected
                && self.deleted.delete(rid)
            {
                return Ok(Some((rid, expected.clone())));
            }
        }
        // By value: delta stores first (replayed inserts land there).
        for d in self.closed.iter_mut().chain(self.open.as_mut()) {
            let found = d.iter().find(|&(_, r)| r == expected).map(|(rid, _)| rid);
            if let Some(found) = found {
                if let Some(row) = d.delete(found) {
                    return Ok(Some((found, row)));
                }
            }
        }
        // Then live compressed rows.
        for g in self.cs.groups() {
            for tuple in 0..g.n_rows() {
                let cand = RowId::new(g.id(), convert::u32_from_usize(tuple)?);
                if !self.deleted.is_deleted(cand)
                    && Row::new(g.row_values(tuple)?) == *expected
                    && self.deleted.delete(cand)
                {
                    return Ok(Some((cand, expected.clone())));
                }
            }
        }
        Ok(None)
    }

    /// Trickle-insert into the open delta store, rotating a full one.
    fn insert_row(&mut self, row: Row) -> Result<RowId> {
        if self.open.as_ref().is_none_or(|d| d.is_full()) {
            if let Some(mut full) = self.open.take() {
                full.close();
                self.closed.push(full);
            }
            let id = self.cs.alloc_group_id();
            self.open = Some(DeltaStore::new(id, self.config.delta_capacity));
        }
        match self.open.as_mut() {
            Some(open) => open.insert(row),
            None => Err(Error::Execution("no open delta store after refill".into())),
        }
    }

    /// Reconcile the governor ledger's delta charge with the stores'
    /// current footprint. Exact (diff-based), so deletes and mover
    /// installs return bytes and nothing leaks. Called at the end of
    /// every write-lock section that changes delta contents.
    fn sync_delta_charge(&mut self) {
        let Some(gov) = &self.governor else { return };
        let cur: usize = self
            .closed
            .iter()
            .chain(self.open.as_ref())
            .map(|d| d.approx_bytes())
            .sum();
        if cur >= self.delta_charged {
            gov.ledger().charge((cur - self.delta_charged) as u64);
        } else {
            gov.ledger().uncharge((self.delta_charged - cur) as u64);
        }
        self.delta_charged = cur;
    }
}

/// Resolve a commit obligation returned by [`Inner::wal_log`]. Call with
/// no table lock held.
fn wal_commit(pending: Option<(Arc<Wal>, u64)>) -> Result<()> {
    match pending {
        Some((wal, lsn)) => wal.commit(lsn),
        None => Ok(()),
    }
}

/// An updatable clustered columnstore table. Cheap to clone (shared state);
/// all methods take `&self` and synchronize internally, so a background
/// tuple mover can run against a clone.
#[derive(Clone)]
pub struct ColumnStoreTable {
    schema: Schema,
    inner: Arc<RwLock<Inner>>,
}

impl ColumnStoreTable {
    pub fn new(schema: Schema, config: TableConfig) -> Self {
        let cs = ColumnStore::new(schema.clone()).with_sort_mode(config.sort_mode.clone());
        Self::from_parts(schema, cs, config)
    }

    fn from_parts(schema: Schema, cs: ColumnStore, config: TableConfig) -> Self {
        ColumnStoreTable {
            schema,
            inner: Arc::new(RwLock::new_leveled(
                3,
                "table.inner",
                Inner {
                    cs,
                    open: None,
                    closed: Vec::new(),
                    deleted: DeleteBitmap::new(),
                    config,
                    faults: None,
                    wal: None,
                    last_lsn: 0,
                    governor: None,
                    delta_charged: 0,
                },
            )),
        }
    }

    /// Install a fault injector consulted at the `mover.pass` point by
    /// every tuple-mover pass (chaos testing).
    pub fn set_fault_injector(&self, faults: FaultInjector) {
        self.inner.write().faults = Some(faults);
    }

    /// Wire this table to a write-ahead log: every subsequent mutation
    /// logs a record and group-commits it before returning.
    pub fn set_wal(&self, handle: WalHandle) {
        self.inner.write().wal = Some(handle);
    }

    /// Detach the WAL (used when tearing a database down in tests).
    pub fn clear_wal(&self) {
        self.inner.write().wal = None;
    }

    /// Wire this table to the resource governor: trickle inserts park at
    /// the delta high-water mark, and delta bytes (existing ones
    /// immediately, future ones as they land) are charged to the shared
    /// memory ledger.
    pub fn set_governor(&self, governor: Arc<Governor>) {
        let mut inner = self.inner.write();
        inner.governor = Some(governor);
        inner.sync_delta_charge();
    }

    /// Block until the closed-delta count is below the governor's
    /// high-water mark (waking on tuple-mover progress), or fail with
    /// [`Error::ResourceExhausted`] at the backpressure deadline. Holds
    /// **no** table lock while parked — the condition is re-read under a
    /// brief read lock every wait slice, so a missed wakeup costs one
    /// slice, never a deadline.
    fn backpressure_admit(&self) -> Result<()> {
        let Some(gov) = self.inner.read().governor.clone() else {
            return Ok(());
        };
        let bp = Arc::clone(gov.backpressure());
        let hwm = bp.high_water();
        if hwm == 0 || (self.inner.read().closed.len() as u64) < hwm {
            return Ok(());
        }
        bp.note_wait();
        let deadline = Instant::now() + bp.timeout();
        loop {
            bp.wait_slice(deadline);
            let hwm = bp.high_water();
            let closed = self.inner.read().closed.len() as u64;
            if hwm == 0 || closed < hwm {
                return Ok(());
            }
            if Instant::now() >= deadline {
                bp.note_rejected();
                return Err(Error::ResourceExhausted(format!(
                    "delta-store backpressure: {closed} closed delta stores at or above \
                     the high-water mark {hwm} and no tuple-mover progress within {}ms",
                    bp.timeout().as_millis()
                )));
            }
        }
    }

    /// The table's persisted-or-replayed LSN watermark.
    pub fn wal_last_lsn(&self) -> u64 {
        self.inner.read().last_lsn
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Trickle-insert one row. Returns its RowId (which may later change if
    /// the tuple mover compresses the row's delta store). With a WAL
    /// attached the insert is durable when this returns.
    pub fn insert(&self, row: Row) -> Result<RowId> {
        self.backpressure_admit()?;
        let (rid, pending) = self.insert_logged(row)?;
        wal_commit(pending)?;
        Ok(rid)
    }

    /// Apply + log an insert without committing: the building block for
    /// `insert` and for bulk loads, which commit once per batch.
    fn insert_logged(&self, row: Row) -> Result<(RowId, Option<(Arc<Wal>, u64)>)> {
        self.schema.check_row(&row)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        // Log before applying: a refused append fails the statement with
        // nothing applied, instead of leaving a visible-but-unlogged row
        // behind until restart. The apply below cannot refuse a
        // schema-checked row, so the logged and applied states agree.
        let pending = match inner.wal.as_ref().map(|h| h.table.clone()) {
            Some(table) => inner.wal_log(&WalRecord::Insert {
                table,
                row: row.clone(),
            })?,
            None => None,
        };
        let rid = inner.insert_row(row)?;
        inner.sync_delta_charge();
        Ok((rid, pending))
    }

    /// Insert every row of one statement under a single commit
    /// obligation: the whole batch rides `InsertBatch` WAL frames
    /// (chunked at [`WAL_BATCH_ROWS`]) and one group commit, so a
    /// multi-row `INSERT ... VALUES (...),(...)` pays one fsync for the
    /// statement instead of one per row. With a WAL attached every row
    /// is durable when this returns.
    pub fn insert_batch(&self, rows: &[Row]) -> Result<Vec<RowId>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        for row in rows {
            self.schema.check_row(row)?;
        }
        self.backpressure_admit()?;
        let (rids, pending) = {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            // Log the whole statement before applying any row: a refused
            // append fails the statement with nothing applied, instead of
            // leaving visible-but-unlogged rows behind until restart. The
            // applies below cannot refuse a schema-checked row, so the
            // logged and applied states agree.
            let mut pending = None;
            if let Some(table) = inner.wal.as_ref().map(|h| h.table.clone()) {
                for chunk in rows.chunks(WAL_BATCH_ROWS) {
                    let record = match chunk {
                        [row] => WalRecord::Insert {
                            table: table.clone(),
                            row: row.clone(),
                        },
                        _ => WalRecord::InsertBatch {
                            table: table.clone(),
                            rows: chunk.to_vec(),
                        },
                    };
                    pending = inner.wal_log(&record)?;
                }
            }
            let mut rids = Vec::with_capacity(rows.len());
            for row in rows {
                rids.push(inner.insert_row(row.clone())?);
            }
            inner.sync_delta_charge();
            (rids, pending)
        };
        wal_commit(pending)?;
        Ok(rids)
    }

    /// Bulk-insert rows. Batches at/above the threshold compress directly;
    /// a trailing remainder below it goes through the delta store. The
    /// whole call is one commit obligation: each compressed chunk and the
    /// delta remainder are logged as `InsertBatch` frames and group-commit
    /// once at the end.
    pub fn bulk_insert(&self, rows: &[Row]) -> Result<BulkLoadReport> {
        for row in rows {
            self.schema.check_row(row)?;
        }
        // Split the load, then compress the bulk chunks *outside* the
        // write lock (mover-style: snapshot the sort mode and global
        // dictionaries, build, install later) so a large load does not
        // block readers and concurrent writers for the duration of the
        // compression.
        let (threshold, max_rows, sort, dicts) = {
            let inner = self.inner.read();
            (
                inner.config.bulk_load_threshold,
                inner.config.max_rowgroup_rows,
                inner.config.sort_mode.clone(),
                inner.cs.global_dicts().to_vec(),
            )
        };
        let mut chunks: Vec<&[Row]> = Vec::new();
        let mut remaining = rows;
        while remaining.len() >= threshold {
            let take = remaining.len().min(max_rows);
            let (chunk, rest) = remaining.split_at(take);
            chunks.push(chunk);
            remaining = rest;
        }
        // Group ids must come from the store's allocator (briefly under
        // the write lock); building happens unlocked.
        let ids: Vec<RowGroupId> = {
            let mut inner = self.inner.write();
            chunks.iter().map(|_| inner.cs.alloc_group_id()).collect()
        };
        let mut built = Vec::with_capacity(chunks.len());
        for (chunk, id) in chunks.iter().zip(&ids) {
            let mut b =
                RowGroupBuilder::new(self.schema.clone(), sort.clone()).with_max_rows(chunk.len());
            for row in *chunk {
                b.push_row(row)?;
            }
            built.push(b.finish(*id, &dicts)?);
        }
        let mut report = BulkLoadReport::default();
        let mut pending = None;
        {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            // Log the whole load before installing anything: batch frames
            // for every chunk (replay re-inserts the rows as delta rows;
            // the mover re-seals) plus a sealed marker, then the delta
            // remainder. A refused append fails the load with nothing
            // visible — neither an unlogged row group nor unlogged delta
            // rows — and nothing below the logging can refuse a
            // schema-checked row, so the logged and applied states agree.
            if let Some(table) = inner.wal.as_ref().map(|h| h.table.clone()) {
                for (chunk, rg) in chunks.iter().zip(&built) {
                    for wal_chunk in chunk.chunks(WAL_BATCH_ROWS) {
                        // The sealed marker below refreshes `pending`
                        // (commit of the highest LSN covers these); the
                        // `?` still propagates a refused append.
                        inner.wal_log(&WalRecord::InsertBatch {
                            table: table.clone(),
                            rows: wal_chunk.to_vec(),
                        })?;
                    }
                    pending = inner.wal_log(&WalRecord::RowGroupSealed {
                        table: table.clone(),
                        group: rg.id().0,
                        rows: chunk.len() as u64,
                    })?;
                }
                for wal_chunk in remaining.chunks(WAL_BATCH_ROWS) {
                    pending = inner.wal_log(&WalRecord::InsertBatch {
                        table: table.clone(),
                        rows: wal_chunk.to_vec(),
                    })?;
                }
            }
            for rg in built {
                report.compressed_groups.push(rg.id());
                inner.cs.add_rowgroup(rg);
            }
            for row in remaining {
                inner.insert_row(row.clone())?;
            }
            report.delta_rows = remaining.len();
            inner.sync_delta_charge();
        }
        wal_commit(pending)?;
        Ok(report)
    }

    /// Delete the row at `rid`. Returns `true` if a live row was deleted,
    /// `false` if the row was already deleted or never existed. With a
    /// WAL attached a successful delete is durable when this returns;
    /// the record carries the row's values because row ids are not
    /// stable across crash replay.
    pub fn delete(&self, rid: RowId) -> Result<bool> {
        let mut pending = None;
        let deleted = {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            let victim: Option<Row> = {
                // Delta stores first (open, then closed).
                if let Some(d) = inner.open.as_mut().filter(|d| d.id() == rid.group) {
                    d.delete(rid)
                } else if let Some(d) = inner.closed.iter_mut().find(|d| d.id() == rid.group) {
                    d.delete(rid)
                } else if let Some(g) = inner.cs.group_by_id(rid.group) {
                    // Compressed groups: mark the delete bitmap.
                    if (rid.tuple as usize) < g.n_rows() {
                        let values = g.row_values(rid.tuple as usize)?;
                        inner.deleted.delete(rid).then(|| Row::new(values))
                    } else {
                        None
                    }
                } else {
                    return Err(Error::Storage(format!("no row group {}", rid.group)));
                }
            };
            let deleted = match victim {
                Some(row) => {
                    if let Some(table) = inner.wal.as_ref().map(|h| h.table.clone()) {
                        pending = inner.wal_log(&WalRecord::Delete { table, rid, row })?;
                    }
                    true
                }
                None => false,
            };
            inner.sync_delta_charge();
            deleted
        };
        wal_commit(pending)?;
        Ok(deleted)
    }

    /// Delete the row at `rid`, but only if the resident row's values
    /// still equal `expected`; on a mismatch, fall back to deleting
    /// `expected` by value. Statement execution snapshots rids and then
    /// deletes them one at a time, and a concurrent tuple-mover pass can
    /// compress the delta store in between — renumbering rows
    /// positionally, so a stale rid would delete the wrong row (or
    /// none). Unlike [`delete`](Self::delete), an unresolvable group id
    /// is not an error here: it just means the rid went stale, and the
    /// by-value fallback decides. Returns `true` if a row was deleted.
    pub fn delete_verified(&self, rid: RowId, expected: &Row) -> Result<bool> {
        let mut pending = None;
        let deleted = {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            let deleted = match inner.delete_matching(rid, expected)? {
                Some((rid, row)) => {
                    if let Some(table) = inner.wal.as_ref().map(|h| h.table.clone()) {
                        pending = inner.wal_log(&WalRecord::Delete { table, rid, row })?;
                    }
                    true
                }
                None => false,
            };
            inner.sync_delta_charge();
            deleted
        };
        wal_commit(pending)?;
        Ok(deleted)
    }

    /// Update = delete + insert. Returns the new row's RowId, or `None` if
    /// `rid` was not a live row.
    pub fn update(&self, rid: RowId, row: Row) -> Result<Option<RowId>> {
        if !self.delete(rid)? {
            return Ok(None);
        }
        Ok(Some(self.insert(row)?))
    }

    /// Update = verified delete + insert; the stale-rid-safe variant of
    /// [`update`](Self::update) (see [`delete_verified`](Self::delete_verified)).
    /// Returns the new row's RowId, or `None` if no row matching
    /// (`rid`, `expected`) was live.
    pub fn update_verified(&self, rid: RowId, expected: &Row, row: Row) -> Result<Option<RowId>> {
        if !self.delete_verified(rid, expected)? {
            return Ok(None);
        }
        Ok(Some(self.insert(row)?))
    }

    /// Fetch the row at `rid` if it is live.
    pub fn get_row(&self, rid: RowId) -> Result<Option<Row>> {
        let inner = self.inner.read();
        if let Some(d) = inner.open.as_ref().filter(|d| d.id() == rid.group) {
            return Ok(d.get(rid).cloned());
        }
        if let Some(d) = inner.closed.iter().find(|d| d.id() == rid.group) {
            return Ok(d.get(rid).cloned());
        }
        if let Some(g) = inner.cs.group_by_id(rid.group) {
            if (rid.tuple as usize) < g.n_rows() && !inner.deleted.is_deleted(rid) {
                return Ok(Some(Row::new(g.row_values(rid.tuple as usize)?)));
            }
            return Ok(None);
        }
        Ok(None)
    }

    /// Compress every closed delta store into a columnar row group (one
    /// tuple-mover pass). Returns the number of delta stores moved.
    ///
    /// The compressed group reuses the delta store's row-group id, so row
    /// ids remain unique; tuple ids within the group are reassigned
    /// (compression reorders rows).
    pub fn tuple_move_once(&self) -> Result<usize> {
        self.tuple_move_pass().map(|r| r.stores)
    }

    /// One tuple-mover pass, reporting stores and rows moved. Consults the
    /// installed fault injector (if any) at `mover.pass` before touching
    /// data, so chaos tests can fail whole passes deterministically.
    pub fn tuple_move_pass(&self) -> Result<MovePassReport> {
        let _span = cstore_common::trace::global().span("mover.pass");
        let faults = {
            let inner = self.inner.read();
            inner.faults.clone()
        };
        if let Some(f) = faults {
            if let Some(kind) = f.hit("mover.pass") {
                return Err(kind.to_error("mover.pass"));
            }
        }
        // Snapshot the closed stores' contents under a read lock, compress
        // without holding any lock, then install under the write lock.
        // Deletes can hit a closed store while it compresses; a store whose
        // row count changed in between is left in place and retried on the
        // next pass, so no delete is ever lost.
        let work: Vec<(RowGroupId, usize, Vec<Vec<Value>>)> = {
            let inner = self.inner.read();
            inner
                .closed
                .iter()
                .map(|d| (d.id(), d.len(), d.to_columns(&self.schema)))
                .collect()
        };
        if work.is_empty() {
            return Ok(MovePassReport::default());
        }
        let (sort, dicts) = {
            let inner = self.inner.read();
            (
                inner.config.sort_mode.clone(),
                inner.cs.global_dicts().to_vec(),
            )
        };
        let mut built = Vec::with_capacity(work.len());
        for (id, len, cols) in work {
            let _span = cstore_common::trace::global().span("compress_rowgroup");
            let mut b =
                RowGroupBuilder::new(self.schema.clone(), sort.clone()).with_max_rows(len.max(1));
            b.push_columns(cols)?;
            built.push((id, len, b.finish(id, &dicts)?));
        }
        let mut moved = MovePassReport::default();
        let mut pending = None;
        let governor = {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            for (id, len, rg) in built {
                // Install only if the store is still present and unchanged
                // (it cannot grow — closed stores take no inserts).
                if let Some(pos) = inner
                    .closed
                    .iter()
                    .position(|d| d.id() == id && d.len() == len)
                {
                    inner.closed.remove(pos);
                    inner.cs.add_rowgroup(rg);
                    moved.stores += 1;
                    moved.rows += len;
                    if let Some(table) = inner.wal.as_ref().map(|h| h.table.clone()) {
                        pending = inner.wal_log(&WalRecord::RowGroupSealed {
                            table,
                            group: id.0,
                            rows: len as u64,
                        })?;
                    }
                }
            }
            inner.sync_delta_charge();
            inner.governor.clone()
        };
        wal_commit(pending)?;
        // Wake parked inserters *after* the write lock is released, so a
        // woken thread's re-check sees the shrunken closed-delta count.
        if moved.stores > 0 {
            if let Some(gov) = governor {
                gov.backpressure().notify_progress();
            }
        }
        Ok(moved)
    }

    /// Force-close the open delta store (so the next tuple-mover pass picks
    /// it up). Used by tests, benchmarks and explicit REORGANIZE calls.
    pub fn close_open_delta(&self) {
        let mut inner = self.inner.write();
        if let Some(mut d) = inner.open.take() {
            if !d.is_empty() {
                d.close();
                inner.closed.push(d);
            }
        }
    }

    /// Rebuild one compressed row group, dropping deleted rows and
    /// re-encoding (REORGANIZE of a group with many deletes).
    pub fn rebuild_group(&self, id: RowGroupId) -> Result<()> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let Some(g) = inner.cs.group_by_id(id) else {
            return Err(Error::Storage(format!("no row group {id}")));
        };
        let n = g.n_rows();
        let mut surviving: Vec<Row> = Vec::with_capacity(n);
        for t in 0..n {
            let rid = RowId::new(id, t as u32);
            if !inner.deleted.is_deleted(rid) {
                surviving.push(Row::new(g.row_values(t)?));
            }
        }
        inner.cs.remove_group(id);
        inner.deleted.clear_group(id);
        if !surviving.is_empty() {
            let mut b = RowGroupBuilder::new(self.schema.clone(), inner.config.sort_mode.clone())
                .with_max_rows(surviving.len());
            for row in &surviving {
                b.push_row(row)?;
            }
            inner.cs.finish_builder(b)?;
        }
        Ok(())
    }

    /// REORGANIZE: compress closed delta stores and rebuild compressed row
    /// groups whose deleted fraction reaches `deleted_threshold` (dropping
    /// the dead rows and re-encoding). Returns `(groups_rebuilt,
    /// deltas_compressed)`.
    pub fn reorganize(&self, deleted_threshold: f64) -> Result<(usize, usize)> {
        let moved = self.tuple_move_once()?;
        let victims: Vec<RowGroupId> = {
            let inner = self.inner.read();
            inner
                .cs
                .groups()
                .iter()
                .filter(|g| {
                    let dead = inner.deleted.deleted_in_group(g.id());
                    g.n_rows() > 0 && dead as f64 / g.n_rows() as f64 >= deleted_threshold
                })
                .map(|g| g.id())
                .collect()
        };
        for id in &victims {
            self.rebuild_group(*id)?;
        }
        Ok((victims.len(), moved))
    }

    /// Switch a compressed row group to archival compression.
    pub fn archive_group(&self, id: RowGroupId) -> Result<()> {
        self.inner.write().cs.archive_group(id)
    }

    /// Archive every compressed row group (`ALTER ... COLUMNSTORE_ARCHIVE`).
    pub fn archive_all(&self) -> Result<()> {
        let ids: Vec<RowGroupId> = {
            let inner = self.inner.read();
            inner.cs.groups().iter().map(|g| g.id()).collect()
        };
        for id in ids {
            self.archive_group(id)?;
        }
        Ok(())
    }

    /// Persist the whole table (compressed row groups, delta rows, delete
    /// bitmap, config) into `store` under `prefix`. Returns the table's
    /// WAL watermark as of this snapshot: every record for this table at
    /// or below the returned LSN is contained in what was just written
    /// (with no WAL attached this is the table's stored watermark).
    pub fn persist(
        &self,
        store: &mut dyn cstore_storage::blob::BlobStore,
        prefix: &str,
    ) -> Result<u64> {
        use cstore_storage::format::{write_value, Writer};
        let inner = self.inner.read();
        // Records are logged and applied inside the same write-lock
        // critical section, so under this read lock every LSN the WAL has
        // handed out is already applied — the global tail is a valid
        // per-table watermark, and a quiet table does not pin retirement.
        let boundary = match &inner.wal {
            Some(h) => h.wal.tail_lsn().max(inner.last_lsn),
            None => inner.last_lsn,
        };
        inner.cs.persist(store, prefix)?;
        // Delta rows (open + closed) flatten into one blob; on load they
        // re-insert through the normal trickle path, so delta-store
        // boundaries may differ — row ids are not durable, rows are.
        let mut w = Writer::new();
        w.u32(0x4454_5343); // "CSTD"
        w.u16(cstore_storage::format::FORMAT_VERSION);
        w.u64(boundary);
        let delta_rows: Vec<&Row> = inner
            .closed
            .iter()
            .chain(inner.open.as_ref())
            .flat_map(|d| d.iter().map(|(_, r)| r))
            .collect();
        w.u32(convert::u32_from_usize(delta_rows.len())?);
        for row in delta_rows {
            for v in row.values() {
                write_value(&mut w, v)?;
            }
        }
        // Delete bitmap: per-group bitmaps.
        let groups: Vec<RowGroupId> = inner.cs.groups().iter().map(|g| g.id()).collect();
        w.u32(convert::u32_from_usize(groups.len())?);
        for gid in groups {
            w.u32(gid.0);
            match inner.deleted.group_bitmap(gid) {
                Some(b) => {
                    w.u32(convert::u32_from_usize(b.len())?);
                    for &word in b.words() {
                        w.u64(word);
                    }
                }
                None => w.u32(0),
            }
        }
        store.put(&format!("{prefix}.delta"), &w.seal())?;
        Ok(boundary)
    }

    /// Load a table persisted by [`ColumnStoreTable::persist`]. Strict:
    /// any unreadable blob fails the whole load.
    pub fn load(
        store: &dyn cstore_storage::blob::BlobStore,
        prefix: &str,
        schema: Schema,
        config: TableConfig,
    ) -> Result<ColumnStoreTable> {
        let cs = ColumnStore::load(store, prefix, schema.clone())?;
        let table = Self::from_parts(schema.clone(), cs, config);
        let blob = store.get(&format!("{prefix}.delta"))?;
        let (rows, deletes, last_lsn) = Self::parse_delta_blob(&blob, &schema)?;
        table.apply_delta(rows, deletes)?;
        table.inner.write().last_lsn = last_lsn;
        Ok(table)
    }

    /// Load a table, quarantining unreadable row-group blobs and an
    /// unreadable delta blob instead of failing. A quarantined delta blob
    /// loses both its rows *and* its delete bitmap (deleted compressed rows
    /// may resurrect) — the returned report is the caller's signal that the
    /// table needs repair. The row-group manifest itself must be readable.
    pub fn load_degraded(
        store: &dyn cstore_storage::blob::BlobStore,
        prefix: &str,
        schema: Schema,
        config: TableConfig,
    ) -> Result<(ColumnStoreTable, Vec<BlobQuarantine>)> {
        let (cs, mut quarantined) = ColumnStore::load_degraded(store, prefix, schema.clone())?;
        let table = Self::from_parts(schema.clone(), cs, config);
        let key = format!("{prefix}.delta");
        match store
            .get(&key)
            .and_then(|blob| Self::parse_delta_blob(&blob, &schema))
        {
            Ok((rows, deletes, last_lsn)) => {
                table.apply_delta(rows, deletes)?;
                table.inner.write().last_lsn = last_lsn;
            }
            Err(e) => quarantined.push(BlobQuarantine {
                key,
                kind: QuarantinedKind::Delta,
                error: e.to_string(),
            }),
        }
        Ok((table, quarantined))
    }

    /// Parse a `.delta` blob into its rows and deleted row ids without
    /// touching any table state, so a parse failure mid-blob cannot leave a
    /// table half-loaded.
    fn parse_delta_blob(blob: &[u8], schema: &Schema) -> Result<(Vec<Row>, Vec<RowId>, u64)> {
        use cstore_storage::format::{read_value, Reader};
        let payload = Reader::check_crc(blob)?;
        let mut r = Reader::new(payload);
        if r.u32()? != 0x4454_5343 {
            return Err(Error::Storage("bad delta blob magic".into()));
        }
        let version = r.u16()?;
        if version != cstore_storage::format::FORMAT_VERSION {
            return Err(Error::Storage(format!(
                "unsupported delta blob version {version}"
            )));
        }
        let last_lsn = r.u64()?;
        let n_rows = convert::usize_from_u32(r.u32()?);
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let mut values = Vec::with_capacity(schema.len());
            for _ in 0..schema.len() {
                values.push(read_value(&mut r)?);
            }
            rows.push(Row::new(values));
        }
        let n_groups = convert::usize_from_u32(r.u32()?);
        let mut deletes = Vec::new();
        for _ in 0..n_groups {
            let gid = RowGroupId(r.u32()?);
            let len = convert::usize_from_u32(r.u32()?);
            if len > 0 {
                let mut words = Vec::with_capacity(len.div_ceil(64));
                for _ in 0..len.div_ceil(64) {
                    words.push(r.u64()?);
                }
                let bitmap = cstore_common::Bitmap::from_words(words, len);
                for tuple in bitmap.iter_ones() {
                    deletes.push(RowId::new(gid, convert::u32_from_usize(tuple)?));
                }
            }
        }
        Ok((rows, deletes, last_lsn))
    }

    /// Re-insert parsed delta rows and re-mark deletes. Delete marks for
    /// row groups absent from the column store (quarantined in a degraded
    /// open) are skipped, keeping row accounting consistent.
    fn apply_delta(&self, rows: Vec<Row>, deletes: Vec<RowId>) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        for rid in deletes {
            if inner.cs.group_by_id(rid.group).is_some() {
                inner.deleted.delete(rid);
            }
        }
        Ok(())
    }

    // -------------------------------------------------- WAL replay

    /// Replay one logged insert: applied iff `lsn` is past the table's
    /// persisted watermark. Never logs (replay runs before a WAL handle
    /// is attached) and advances the watermark so replay is idempotent.
    pub fn wal_apply_insert(&self, lsn: u64, row: Row) -> Result<bool> {
        self.schema.check_row(&row)?;
        let mut inner = self.inner.write();
        if lsn <= inner.last_lsn {
            return Ok(false);
        }
        let inner = &mut *inner;
        inner.insert_row(row)?;
        inner.last_lsn = lsn;
        inner.sync_delta_charge();
        Ok(true)
    }

    /// Replay one logged insert batch: every row applied iff `lsn` is
    /// past the table's watermark. The batch rode a single frame, so it
    /// shares one LSN and replays all-or-nothing — idempotent under the
    /// same watermark rule as single-row inserts.
    pub fn wal_apply_insert_batch(&self, lsn: u64, rows: Vec<Row>) -> Result<bool> {
        for row in &rows {
            self.schema.check_row(row)?;
        }
        let mut inner = self.inner.write();
        if lsn <= inner.last_lsn {
            return Ok(false);
        }
        let inner = &mut *inner;
        for row in rows {
            inner.insert_row(row)?;
        }
        inner.last_lsn = lsn;
        inner.sync_delta_charge();
        Ok(true)
    }

    /// Replay one logged delete. The logged `rid` resolves only when the
    /// row group survived into the loaded state; otherwise (the row was
    /// re-inserted as a delta row, or its mover-built group died with the
    /// crash) fall back to deleting one row matching the logged values —
    /// row identity across replay is by value, not by id.
    pub fn wal_apply_delete(&self, lsn: u64, rid: RowId, row: &Row) -> Result<ReplayDelete> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        if lsn <= inner.last_lsn {
            return Ok(ReplayDelete::BelowWatermark);
        }
        inner.last_lsn = lsn;
        // Ids are reassigned on load and replay, so the logged rid can
        // alias an unrelated row — resolve it value-verified.
        let applied = inner.delete_matching(rid, row)?;
        inner.sync_delta_charge();
        match applied {
            Some(_) => Ok(ReplayDelete::Applied),
            None => Ok(ReplayDelete::NotFound),
        }
    }

    /// Replay one committed transaction's operations against this table,
    /// in the transaction's log order, gated **once** on the TxnCommit
    /// record's LSN. The individual ops keep their original (earlier)
    /// LSNs in the log, but interleaved auto-commit frames may have
    /// advanced the watermark past them — the commit record is the
    /// atomicity point, so `commit_lsn` is what decides replay-vs-skip
    /// for the whole transaction. Returns `false` when the save already
    /// covered the commit (watermark ≥ `commit_lsn`).
    pub fn wal_apply_txn_ops(&self, commit_lsn: u64, ops: &[TxnApplyOp]) -> Result<bool> {
        for op in ops {
            if let TxnApplyOp::Insert(rows) = op {
                for row in rows {
                    self.schema.check_row(row)?;
                }
            }
        }
        let mut inner = self.inner.write();
        if commit_lsn <= inner.last_lsn {
            return Ok(false);
        }
        let inner = &mut *inner;
        for op in ops {
            match op {
                TxnApplyOp::Insert(rows) => {
                    for row in rows {
                        inner.insert_row(row.clone())?;
                    }
                }
                TxnApplyOp::Delete(rid, row) => {
                    // Value-verified, same as wal_apply_delete: ids are
                    // reassigned across replay. A miss means the row was
                    // already gone — counted at the call site, not fatal.
                    // lint: allow(discard) — miss is legitimate here
                    let _ = inner.delete_matching(*rid, row)?;
                }
            }
        }
        inner.last_lsn = commit_lsn;
        inner.sync_delta_charge();
        Ok(true)
    }

    // ---------------------------------------- transaction commit apply

    /// Insert schema-checked rows *without* logging: the transaction
    /// layer already logged them as TxnOp frames at statement time, so
    /// logging again at commit-apply would double them on replay.
    pub fn apply_unlogged_insert_batch(&self, rows: &[Row]) -> Result<Vec<RowId>> {
        for row in rows {
            self.schema.check_row(row)?;
        }
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let mut rids = Vec::with_capacity(rows.len());
        for row in rows {
            rids.push(inner.insert_row(row.clone())?);
        }
        inner.sync_delta_charge();
        Ok(rids)
    }

    /// Value-verified delete *without* logging (see
    /// [`apply_unlogged_insert_batch`](Self::apply_unlogged_insert_batch)
    /// for why). Returns the resolved `(rid, row)` when a matching live
    /// row was deleted — `None` means a concurrent committer got the row
    /// first, which the transaction layer treats as a write-write
    /// conflict at commit. Mover-safe: resolution falls back to by-value
    /// when the rid went stale (PR 5 discipline).
    pub fn apply_unlogged_delete(
        &self,
        rid: RowId,
        expected: &Row,
    ) -> Result<Option<(RowId, Row)>> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let hit = inner.delete_matching(rid, expected)?;
        inner.sync_delta_charge();
        Ok(hit)
    }

    /// A consistent snapshot for scans.
    pub fn snapshot(&self) -> TableSnapshot {
        let inner = self.inner.read();
        let mut delta_rows = Vec::new();
        for d in inner.closed.iter().chain(inner.open.as_ref()) {
            for (rid, row) in d.iter() {
                delta_rows.push((rid, row.clone()));
            }
        }
        TableSnapshot::new(
            self.schema.clone(),
            inner.cs.groups().to_vec(),
            delta_rows,
            inner.deleted.clone(),
        )
    }

    /// Point-in-time introspection snapshot for the `sys.*` views:
    /// delta-store lifecycle (open/closed), compressed row-group handles,
    /// per-group delete counts and the table's global dictionaries — all
    /// captured under **one** read-lock critical section, so the delete
    /// counts always agree with the captured groups even while the tuple
    /// mover is installing compressions concurrently. Per-segment work
    /// (metadata, size estimates) happens on the returned `Arc`-shared
    /// handles after the lock is released.
    pub fn introspect(&self) -> TableIntrospection {
        let inner = self.inner.read();
        let delta_info = |d: &crate::delta_store::DeltaStore| DeltaStoreIntrospection {
            id: d.id(),
            rows: d.len(),
            approx_bytes: d.approx_bytes(),
        };
        let groups = inner.cs.groups().to_vec();
        let deleted_rows = groups
            .iter()
            .map(|g| inner.deleted.deleted_in_group(g.id()))
            .collect();
        TableIntrospection {
            schema: self.schema.clone(),
            open: inner.open.as_ref().map(delta_info),
            closed: inner.closed.iter().map(delta_info).collect(),
            groups,
            deleted_rows,
            global_dicts: inner.cs.global_dicts().to_vec(),
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> TableStats {
        let inner = self.inner.read();
        let delta_rows: usize = inner
            .closed
            .iter()
            .chain(inner.open.as_ref())
            .map(|d| d.len())
            .sum();
        TableStats {
            compressed_rows: inner.cs.total_rows(),
            deleted_rows: inner.deleted.total_deleted(),
            delta_rows,
            n_compressed_groups: inner.cs.groups().len(),
            n_open_deltas: usize::from(inner.open.is_some()),
            n_closed_deltas: inner.closed.len(),
            compressed_bytes: inner.cs.encoded_bytes(),
            delta_bytes: inner
                .closed
                .iter()
                .chain(inner.open.as_ref())
                .map(|d| d.approx_bytes())
                .sum(),
        }
    }

    /// Live rows (compressed − deleted + delta).
    pub fn total_rows(&self) -> usize {
        let s = self.stats();
        s.compressed_rows - s.deleted_rows + s.delta_rows
    }

    /// Run `f` with read access to the compressed column store (scan path).
    pub fn with_columnstore<R>(&self, f: impl FnOnce(&ColumnStore) -> R) -> R {
        f(&self.inner.read().cs)
    }

    /// Sum of a column over a snapshot — convenience used by tests.
    pub fn sum_i64(&self, col: usize) -> Result<i64> {
        let snap = self.snapshot();
        let mut total = 0i64;
        for row in snap.scan_rows() {
            if let Some(v) = row.get(col).as_i64() {
                total += v;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstore_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::not_null("s", DataType::Utf8),
        ])
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int64(i), Value::str(format!("v{}", i % 5))])
    }

    fn small_config() -> TableConfig {
        TableConfig {
            delta_capacity: 100,
            bulk_load_threshold: 500,
            max_rowgroup_rows: 1000,
            sort_mode: SortMode::None,
        }
    }

    #[test]
    fn trickle_inserts_fill_and_close_deltas() {
        let t = ColumnStoreTable::new(schema(), small_config());
        for i in 0..250 {
            t.insert(row(i)).unwrap();
        }
        let s = t.stats();
        assert_eq!(s.delta_rows, 250);
        assert_eq!(s.n_closed_deltas, 2);
        assert_eq!(s.n_open_deltas, 1);
        assert_eq!(t.total_rows(), 250);
    }

    #[test]
    fn tuple_mover_compresses_closed_deltas() {
        let t = ColumnStoreTable::new(schema(), small_config());
        for i in 0..250 {
            t.insert(row(i)).unwrap();
        }
        let moved = t.tuple_move_once().unwrap();
        assert_eq!(moved, 2);
        let s = t.stats();
        assert_eq!(s.compressed_rows, 200);
        assert_eq!(s.delta_rows, 50);
        assert_eq!(s.n_closed_deltas, 0);
        assert_eq!(t.total_rows(), 250);
        // Data survives the move.
        let all: i64 = t.sum_i64(0).unwrap();
        assert_eq!(all, (0..250).sum::<i64>());
    }

    #[test]
    fn verified_delete_survives_mover_renumbering() {
        // A delta store with a hole compresses into dense positions, so
        // tuple ids captured before the move no longer line up: a bare
        // rid delete would hit the wrong row (or fall off the end).
        let config = TableConfig {
            delta_capacity: 10,
            ..small_config()
        };
        let t = ColumnStoreTable::new(schema(), config);
        let rids: Vec<RowId> = (0..10).map(|i| t.insert(row(i)).unwrap()).collect();
        assert!(t.delete(rids[3]).unwrap());
        t.close_open_delta();
        assert_eq!(t.tuple_move_once().unwrap(), 1);
        // Row 7 now sits at position 6 of the compressed group; its old
        // rid points at row 8. The verified delete removes row 7 anyway.
        assert!(t.delete_verified(rids[7], &row(7)).unwrap());
        // Row 9 is the last row; its old tuple id (9) is past the end of
        // the 9-row group, which a bare rid lookup cannot resolve at all.
        assert!(t.delete_verified(rids[9], &row(9)).unwrap());
        // Already-deleted rows are not found again.
        assert!(!t.delete_verified(rids[7], &row(7)).unwrap());
        assert_eq!(t.total_rows(), 7);
        assert_eq!(t.sum_i64(0).unwrap(), (0..10).sum::<i64>() - 3 - 7 - 9);
    }

    #[test]
    fn bulk_insert_above_threshold_bypasses_delta() {
        let t = ColumnStoreTable::new(schema(), small_config());
        let rows: Vec<Row> = (0..2300).map(row).collect();
        let report = t.bulk_insert(&rows).unwrap();
        // 2300 rows, max group 1000, threshold 500: groups of 1000+1000,
        // remainder 300 < 500 → delta.
        assert_eq!(report.compressed_groups.len(), 2);
        assert_eq!(report.delta_rows, 300);
        let s = t.stats();
        assert_eq!(s.compressed_rows, 2000);
        assert_eq!(s.delta_rows, 300);
    }

    #[test]
    fn bulk_insert_below_threshold_goes_to_delta() {
        let t = ColumnStoreTable::new(schema(), small_config());
        let rows: Vec<Row> = (0..400).map(row).collect();
        let report = t.bulk_insert(&rows).unwrap();
        assert!(report.compressed_groups.is_empty());
        assert_eq!(report.delta_rows, 400);
        assert_eq!(t.stats().compressed_rows, 0);
    }

    fn wal_fixture(
        seed: u64,
    ) -> (
        ColumnStoreTable,
        std::sync::Arc<Wal>,
        FaultInjector,
        cstore_storage::log::MemLogStore,
    ) {
        let t = ColumnStoreTable::new(schema(), small_config());
        let store = cstore_storage::log::MemLogStore::new();
        let faults = FaultInjector::new(seed);
        let (wal, _) = Wal::open(
            Box::new(store.clone()),
            crate::wal::WalOptions::default(),
            Some(faults.clone()),
            &[],
        )
        .unwrap();
        t.set_wal(WalHandle {
            wal: Arc::clone(&wal),
            table: "t".into(),
        });
        (t, wal, faults, store)
    }

    /// Satellite-1 regression: with the WAL wedged, `bulk_insert` must
    /// propagate the append error AND must not leave an unlogged row
    /// group sealed — the old per-row path installed the group first and
    /// only then noticed the refusal.
    #[test]
    fn bulk_insert_propagates_wal_errors_without_sealing() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        let (t, wal, faults, _) = wal_fixture(21);
        // Wedge the WAL with a failed flush (sticky).
        faults.arm("wal.append", FaultSpec::new(FaultKind::IoError).always());
        assert!(t.insert(row(0)).is_err());
        assert!(wal.status().failed.is_some());
        // ≥ threshold (500), so the bulk path would seal a group.
        let rows: Vec<Row> = (0..600).map(row).collect();
        let err = t.bulk_insert(&rows).unwrap_err();
        assert!(err.to_string().contains("WAL is failed"), "{err}");
        let s = t.stats();
        assert_eq!(
            s.n_compressed_groups, 0,
            "a refused append must not seal a row group"
        );
        assert_eq!(s.compressed_rows, 0);
        assert_eq!(s.delta_rows, 1, "only the wedging insert's row remains");
    }

    /// Review fix: insert paths log before applying, so a statement
    /// that fails at WAL logging leaves no visible-but-unlogged rows
    /// behind (previously the rows stayed queryable until restart and
    /// silently vanished after a crash).
    #[test]
    fn refused_wal_log_leaves_no_visible_rows() {
        use cstore_common::fault::{FaultKind, FaultSpec};
        let (t, wal, faults, _) = wal_fixture(23);
        faults.arm("wal.append", FaultSpec::new(FaultKind::IoError).always());
        // The wedging insert fails at *commit* (its frame was buffered);
        // its row stays — that is the flush-failure case, handled by the
        // WAL's sticky failure and read-only degradation.
        assert!(t.insert(row(0)).is_err());
        assert!(wal.status().failed.is_some());
        let before = t.total_rows();
        // With the WAL failed, logging is refused up front: neither the
        // single-row, batched, nor bulk path may apply anything.
        assert!(t.insert(row(1)).is_err());
        let batch: Vec<Row> = (0..50).map(row).collect();
        assert!(t.insert_batch(&batch).is_err());
        let bulk: Vec<Row> = (0..600).map(row).collect();
        assert!(t.bulk_insert(&bulk).is_err());
        assert_eq!(
            t.total_rows(),
            before,
            "a refused WAL append must not leave rows visible"
        );
    }

    /// Satellite-2 regression: a multi-row batch is one commit
    /// obligation — one `InsertBatch` frame, one flush, one fsync.
    #[test]
    fn insert_batch_is_one_frame_and_one_fsync() {
        let (t, wal, _, store) = wal_fixture(22);
        let rows: Vec<Row> = (0..50).map(row).collect();
        let rids = t.insert_batch(&rows).unwrap();
        assert_eq!(rids.len(), 50);
        assert_eq!(t.total_rows(), 50);
        let c = wal.status().counters;
        assert_eq!(c.records_appended, 1, "one InsertBatch frame per statement");
        assert_eq!(c.fsyncs, 1, "one fsync per statement, not per row");
        // And it replays: reopening the durable image into a fresh table
        // recovers every row of the batch.
        t.clear_wal();
        drop(wal); // joins the writer; the crash image is fully durable
        let t2 = ColumnStoreTable::new(schema(), small_config());
        let (_wal2, report) = Wal::open(
            Box::new(store.crash_image()),
            crate::wal::WalOptions::default(),
            None,
            &[("t".into(), t2.clone())],
        )
        .unwrap();
        assert_eq!(report.records_applied, 1);
        assert_eq!(t2.total_rows(), 50);
    }

    /// Replaying the same `InsertBatch` frame twice applies it once: the
    /// batch shares one LSN and the watermark gates it all-or-nothing.
    #[test]
    fn insert_batch_replay_is_idempotent() {
        let t = ColumnStoreTable::new(schema(), small_config());
        let rows: Vec<Row> = (0..10).map(row).collect();
        assert!(t.wal_apply_insert_batch(5, rows.clone()).unwrap());
        assert_eq!(t.total_rows(), 10);
        assert!(!t.wal_apply_insert_batch(5, rows.clone()).unwrap());
        assert_eq!(t.total_rows(), 10, "below-watermark replay is skipped");
        assert!(t.wal_apply_insert_batch(6, rows).unwrap());
        assert_eq!(t.total_rows(), 20);
        assert_eq!(t.wal_last_lsn(), 6);
    }

    #[test]
    fn delete_from_delta_and_compressed() {
        let t = ColumnStoreTable::new(schema(), small_config());
        // Compressed rows via bulk load.
        t.bulk_insert(&(0..1000).map(row).collect::<Vec<_>>())
            .unwrap();
        // Delta rows via trickle.
        let rid_delta = t.insert(row(5000)).unwrap();
        let rid_comp = RowId::new(RowGroupId(0), 10);
        assert!(t.delete(rid_comp).unwrap());
        assert!(!t.delete(rid_comp).unwrap(), "double delete");
        assert!(t.delete(rid_delta).unwrap());
        assert!(!t.delete(rid_delta).unwrap());
        assert_eq!(t.total_rows(), 999);
        assert_eq!(t.get_row(rid_comp).unwrap(), None);
    }

    #[test]
    fn delete_unknown_group_errors() {
        let t = ColumnStoreTable::new(schema(), small_config());
        assert!(t.delete(RowId::new(RowGroupId(99), 0)).is_err());
    }

    #[test]
    fn update_moves_row() {
        let t = ColumnStoreTable::new(schema(), small_config());
        t.bulk_insert(&(0..1000).map(row).collect::<Vec<_>>())
            .unwrap();
        let old = RowId::new(RowGroupId(0), 7);
        let old_row = t.get_row(old).unwrap().unwrap();
        let new_rid = t.update(old, row(9999)).unwrap().unwrap();
        assert_ne!(old.group, new_rid.group, "update lands in a delta store");
        assert_eq!(t.get_row(old).unwrap(), None);
        assert_eq!(
            t.get_row(new_rid).unwrap().unwrap().get(0),
            &Value::Int64(9999)
        );
        assert_ne!(old_row.get(0), &Value::Int64(9999));
        assert_eq!(t.total_rows(), 1000);
        // Updating a dead row yields None.
        assert_eq!(t.update(old, row(1)).unwrap(), None);
    }

    #[test]
    fn snapshot_merges_all_sources() {
        let t = ColumnStoreTable::new(schema(), small_config());
        t.bulk_insert(&(0..1000).map(row).collect::<Vec<_>>())
            .unwrap();
        t.insert(row(1000)).unwrap();
        t.delete(RowId::new(RowGroupId(0), 0)).unwrap();
        let snap = t.snapshot();
        let keys: std::collections::BTreeSet<i64> = snap
            .scan_rows()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(keys.len(), 1000);
        assert!(!keys.contains(&0), "deleted row visible");
        assert!(keys.contains(&1000), "delta row missing");
    }

    #[test]
    fn rebuild_group_drops_deleted() {
        let t = ColumnStoreTable::new(schema(), small_config());
        t.bulk_insert(&(0..1000).map(row).collect::<Vec<_>>())
            .unwrap();
        for tpl in 0..500 {
            t.delete(RowId::new(RowGroupId(0), tpl)).unwrap();
        }
        assert_eq!(t.stats().deleted_rows, 500);
        t.rebuild_group(RowGroupId(0)).unwrap();
        let s = t.stats();
        assert_eq!(s.deleted_rows, 0);
        assert_eq!(s.compressed_rows, 500);
        assert_eq!(t.total_rows(), 500);
    }

    #[test]
    fn reorganize_rebuilds_heavily_deleted_groups() {
        let t = ColumnStoreTable::new(schema(), small_config());
        t.bulk_insert(&(0..2000).map(row).collect::<Vec<_>>())
            .unwrap();
        // Kill 60% of group 0, 1% of group 1.
        for tuple in 0..600 {
            t.delete(RowId::new(RowGroupId(0), tuple)).unwrap();
        }
        for tuple in 0..10 {
            t.delete(RowId::new(RowGroupId(1), tuple)).unwrap();
        }
        // Some closed delta stores too.
        for i in 0..250 {
            t.insert(row(10_000 + i)).unwrap();
        }
        let before = t.total_rows();
        let (rebuilt, moved) = t.reorganize(0.3).unwrap();
        assert_eq!(rebuilt, 1, "only the 60%-dead group crosses the threshold");
        assert_eq!(moved, 2);
        assert_eq!(t.total_rows(), before);
        let s = t.stats();
        assert_eq!(s.deleted_rows, 10, "group 0's marks were purged");
        // Deleted: group 0 rows k=0..600, group 1 rows k=1000..1010.
        assert_eq!(
            t.sum_i64(0).unwrap(),
            (600..2000).sum::<i64>() - (1000..1010).sum::<i64>() + (10_000..10_250).sum::<i64>(),
        );
    }

    #[test]
    fn archive_all_preserves_scans() {
        let t = ColumnStoreTable::new(schema(), small_config());
        t.bulk_insert(&(0..2000).map(row).collect::<Vec<_>>())
            .unwrap();
        let before: i64 = t.sum_i64(0).unwrap();
        t.archive_all().unwrap();
        assert_eq!(t.sum_i64(0).unwrap(), before);
    }

    #[test]
    fn governor_ledger_tracks_delta_bytes() {
        use cstore_common::governor::Governor;
        let t = ColumnStoreTable::new(schema(), small_config());
        let gov = Arc::new(Governor::new());
        for i in 0..50 {
            t.insert(row(i)).unwrap();
        }
        // Attaching charges the *existing* delta footprint.
        t.set_governor(Arc::clone(&gov));
        let charged = gov.ledger().reserved();
        assert_eq!(charged as usize, t.stats().delta_bytes);
        assert!(charged > 0);
        t.insert(row(50)).unwrap();
        assert!(gov.ledger().reserved() > charged, "insert charges bytes");
        // Compressing the delta stores returns their bytes.
        t.close_open_delta();
        t.tuple_move_once().unwrap();
        assert_eq!(gov.ledger().reserved(), 0);
        // A delta delete returns the row's bytes too.
        let rid = t.insert(row(99)).unwrap();
        assert!(gov.ledger().reserved() > 0);
        t.delete(rid).unwrap();
        assert_eq!(gov.ledger().reserved(), 0);
        // Dropping the table returns whatever is still charged.
        t.insert(row(100)).unwrap();
        assert!(gov.ledger().reserved() > 0);
        drop(t);
        assert_eq!(gov.ledger().reserved(), 0);
    }

    #[test]
    fn governor_backpressure_rejects_then_resumes_on_mover_progress() {
        use cstore_common::governor::Governor;
        use std::time::Duration;
        let config = TableConfig {
            delta_capacity: 10,
            ..small_config()
        };
        let t = ColumnStoreTable::new(schema(), config);
        let gov = Arc::new(Governor::new());
        gov.backpressure().set_high_water(2);
        gov.backpressure().set_timeout_ms(150);
        t.set_governor(Arc::clone(&gov));
        // 21 inserts = two closed stores + one row in the third; the
        // high-water check precedes each insert, so the fill itself never
        // sees the mark crossed.
        for i in 0..21 {
            t.insert(row(i)).unwrap();
        }
        assert_eq!(t.stats().n_closed_deltas, 2);
        // No mover running: a blocked insert gives up at the deadline.
        let err = t.insert(row(100)).unwrap_err();
        assert_eq!(err.code(), "RESOURCE_EXHAUSTED", "{err}");
        assert!(
            err.to_string().contains("delta-store backpressure"),
            "{err}"
        );
        assert_eq!(gov.snapshot().backpressure_rejected_total, 1);
        // With a mover making progress, the parked insert resumes.
        gov.backpressure().set_timeout_ms(5_000);
        let t2 = t.clone();
        let mover = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            t2.tuple_move_once().unwrap();
        });
        t.insert(row(101)).unwrap();
        mover.join().unwrap();
        assert!(gov.snapshot().backpressure_waits_total >= 2);
        assert_eq!(t.stats().n_closed_deltas, 0);
    }

    #[test]
    fn concurrent_inserts_and_mover() {
        let t = ColumnStoreTable::new(schema(), small_config());
        let t2 = t.clone();
        let writer = std::thread::spawn(move || {
            for i in 0..2000 {
                t2.insert(row(i)).unwrap();
            }
        });
        let t3 = t.clone();
        let mover = std::thread::spawn(move || {
            for _ in 0..50 {
                t3.tuple_move_once().unwrap();
                std::thread::yield_now();
            }
        });
        writer.join().unwrap();
        mover.join().unwrap();
        t.tuple_move_once().unwrap();
        assert_eq!(t.total_rows(), 2000);
        assert_eq!(t.sum_i64(0).unwrap(), (0..2000).sum::<i64>());
    }
}
