//! The updatable clustered columnstore.
//!
//! Implements the paper's main enhancement: a column store index that
//! serves as the base storage of a table and supports trickle inserts,
//! deletes, updates and bulk loads. The moving parts:
//!
//! * [`btree::BTree`] — the B+tree substrate backing delta stores;
//! * [`DeltaStore`] — uncompressed row groups absorbing trickle inserts;
//! * [`DeleteBitmap`] — delete marks for rows in compressed row groups;
//! * [`ColumnStoreTable`] — the table: compressed row groups (from
//!   `cstore-storage`) + delta stores + delete bitmap + id allocation;
//! * [`TupleMover`] — background compression of closed delta stores;
//! * [`TableSnapshot`] — consistent scan views.

pub mod btree;
pub mod delete_bitmap;
pub mod delta_store;
pub mod snapshot;
pub mod table;
pub mod tuple_mover;
pub mod wal;

pub use delete_bitmap::DeleteBitmap;
pub use delta_store::{DeltaState, DeltaStore};
pub use snapshot::TableSnapshot;
pub use table::{
    BulkLoadReport, ColumnStoreTable, DeltaStoreIntrospection, MovePassReport, TableConfig,
    TableIntrospection, TableStats,
};
pub use tuple_mover::{MoverConfig, MoverState, MoverStatus, TupleMover};
pub use wal::{
    SegmentQuarantine, Wal, WalHandle, WalOptions, WalRecord, WalReplayReport, WalStatus,
    WalSyncMode,
};
