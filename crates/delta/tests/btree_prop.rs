//! Property tests: the B+tree must behave exactly like `BTreeMap`.

use std::collections::BTreeMap;

use cstore_delta::btree::BTree;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    RangeFrom(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Small key domain → lots of collisions, replacements and removals.
    let key = 0u64..120;
    prop_oneof![
        3 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key.clone().prop_map(Op::Remove),
        1 => key.clone().prop_map(Op::Get),
        1 => key.prop_map(Op::RangeFrom),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mirrors_btreemap(ops in proptest::collection::vec(arb_op(), 0..600)) {
        let mut t: BTree<u64> = BTree::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(t.insert(k, v), m.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(t.remove(k), m.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(t.get(k), m.get(&k));
                }
                Op::RangeFrom(k) => {
                    let got: Vec<(u64, u64)> = t.range_from(k).map(|(a, b)| (a, *b)).collect();
                    let want: Vec<(u64, u64)> = m.range(k..).map(|(&a, &b)| (a, b)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(t.len(), m.len());
            prop_assert_eq!(t.first_key(), m.keys().next().copied());
        }
        let got: Vec<(u64, u64)> = t.iter().map(|(a, b)| (a, *b)).collect();
        let want: Vec<(u64, u64)> = m.iter().map(|(&a, &b)| (a, b)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_then_drain(keys in proptest::collection::vec(any::<u64>(), 0..800)) {
        let mut t: BTree<u64> = BTree::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            t.insert(k, k ^ 1);
            m.insert(k, k ^ 1);
        }
        prop_assert_eq!(t.len(), m.len());
        for &k in &keys {
            prop_assert_eq!(t.remove(k), m.remove(&k));
        }
        prop_assert!(t.is_empty());
        prop_assert_eq!(t.depth(), 1, "tree must collapse after draining");
    }
}
