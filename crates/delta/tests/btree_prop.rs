//! Randomized differential tests: the B+tree must behave exactly like
//! `BTreeMap`. Deterministic seeded `Rng` replaces proptest so the suite
//! builds offline; each case runs many independent seeds.

use std::collections::BTreeMap;

use cstore_common::testutil::Rng;
use cstore_delta::btree::BTree;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    RangeFrom(u64),
}

/// Small key domain → lots of collisions, replacements and removals.
fn random_op(rng: &mut Rng) -> Op {
    let key = rng.below(120);
    match rng.below(7) {
        0..=2 => Op::Insert(key, rng.next_u64()),
        3..=4 => Op::Remove(key),
        5 => Op::Get(key),
        _ => Op::RangeFrom(key),
    }
}

#[test]
fn mirrors_btreemap() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let n_ops = rng.range_usize(0, 600);
        let mut t: BTree<u64> = BTree::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..n_ops {
            let op = random_op(&mut rng);
            match op.clone() {
                Op::Insert(k, v) => {
                    assert_eq!(t.insert(k, v), m.insert(k, v), "seed {seed} step {step}");
                }
                Op::Remove(k) => {
                    assert_eq!(t.remove(k), m.remove(&k), "seed {seed} step {step}");
                }
                Op::Get(k) => {
                    assert_eq!(t.get(k), m.get(&k), "seed {seed} step {step}");
                }
                Op::RangeFrom(k) => {
                    let got: Vec<(u64, u64)> = t.range_from(k).map(|(a, b)| (a, *b)).collect();
                    let want: Vec<(u64, u64)> = m.range(k..).map(|(&a, &b)| (a, b)).collect();
                    assert_eq!(got, want, "seed {seed} step {step} op {op:?}");
                }
            }
            assert_eq!(t.len(), m.len(), "seed {seed} step {step}");
            assert_eq!(t.first_key(), m.keys().next().copied(), "seed {seed}");
        }
        let got: Vec<(u64, u64)> = t.iter().map(|(a, b)| (a, *b)).collect();
        let want: Vec<(u64, u64)> = m.iter().map(|(&a, &b)| (a, b)).collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn bulk_then_drain() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed ^ 0xB17E);
        let n_keys = rng.range_usize(0, 800);
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.next_u64()).collect();
        let mut t: BTree<u64> = BTree::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            t.insert(k, k ^ 1);
            m.insert(k, k ^ 1);
        }
        assert_eq!(t.len(), m.len(), "seed {seed}");
        for &k in &keys {
            assert_eq!(t.remove(k), m.remove(&k), "seed {seed} key {k}");
        }
        assert!(t.is_empty(), "seed {seed}");
        assert_eq!(
            t.depth(),
            1,
            "tree must collapse after draining (seed {seed})"
        );
    }
}
