//! # cstore — an updatable column store with batch-mode (vectorized) execution
//!
//! A Rust reproduction of *"Enhancements to SQL Server Column Stores"*
//! (Larson et al., SIGMOD 2013). This crate is the user-facing facade: it
//! re-exports the workspace crates under stable names.
//!
//! Start with [`cstore_core::Database`] (re-exported as `cstore::Database`).

pub use cstore_common as common;
pub use cstore_core::{
    Catalog, Database, ExecMode, OpenMode, OpenReport, QueryResult, TableEntry, TableOpenReport,
    TxnAck, TxnInfo, TxnManager, TxnState, VerifyReport, SYS_VIEW_NAMES,
};
pub use cstore_delta as delta;
pub use cstore_exec as exec;
pub use cstore_planner as planner;
pub use cstore_rowstore as rowstore;
pub use cstore_sql as sql;
pub use cstore_storage as storage;
pub use cstore_workload as workload;
