//! `cstore` — an interactive SQL shell over the embedded database.
//!
//! ```sh
//! cargo run --release --bin cstore            # in-memory session
//! cargo run --release --bin cstore -- mydb/   # persistent session
//! cargo run --release --bin cstore -- metrics [mydb/]   # metrics dump
//! cargo run --release --bin cstore -- trace dump        # Chrome trace JSON
//! cargo run --release --bin cstore -- lint [--json]     # static analysis
//! cargo run --release --bin cstore -- faults list       # fault points
//! ```
//!
//! Meta commands: `\tables`, `\stats <table>`, `\metrics`, `\waits`,
//! `\querystore`, `\faults`, `\save`, `\demo`, `\trace on|off|dump`,
//! `\quit`. Everything else is SQL
//! (`SELECT`/`INSERT`/`UPDATE`/`DELETE`/`CREATE TABLE`/`ANALYZE`/
//! `EXPLAIN [ANALYZE]`), terminated by `;` or a newline.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::time::Duration;

use cstore::workload::StarSchema;
use cstore::{Database, QueryResult};

fn main() {
    if std::env::args().nth(1).as_deref() == Some("metrics") {
        run_metrics(std::env::args().nth(2).map(PathBuf::from));
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("trace") {
        if std::env::args().nth(2).as_deref() != Some("dump") {
            eprintln!("usage: cstore trace dump");
            std::process::exit(2);
        }
        run_trace_dump();
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("lint") {
        run_lint(std::env::args().nth(2).as_deref() == Some("--json"));
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("faults") {
        if std::env::args().nth(2).as_deref() != Some("list") {
            eprintln!("usage: cstore faults list");
            std::process::exit(2);
        }
        print_fault_points();
        return;
    }
    let dir: Option<PathBuf> = std::env::args().nth(1).map(PathBuf::from);
    let db = match &dir {
        Some(d) if Database::persisted_at(d) => match Database::open_from(d) {
            Ok(db) => {
                eprintln!("opened database at {}", d.display());
                db
            }
            Err(e) => {
                eprintln!("failed to open {}: {e}", d.display());
                std::process::exit(1);
            }
        },
        _ => Database::new(),
    };
    eprintln!("cstore — updatable columnstore + batch mode (SIGMOD'13 reproduction)");
    eprintln!("type SQL, or \\demo to load a sample warehouse; \\quit exits");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("cstore> ");
        } else {
            eprint!("   ...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Meta commands act immediately.
        if buffer.is_empty() && line.starts_with('\\') {
            match run_meta(&db, line, &dir) {
                MetaResult::Continue => continue,
                MetaResult::Quit => break,
            }
        }
        buffer.push_str(line);
        buffer.push(' ');
        // Execute on a terminating semicolon (or any complete line that
        // came in one piece).
        if line.ends_with(';') || !line.ends_with(',') {
            let sql = buffer.trim().trim_end_matches(';').to_owned();
            buffer.clear();
            if sql.is_empty() {
                continue;
            }
            run_sql(&db, &sql);
        }
    }
    if let Some(d) = dir {
        // An open transaction would block the save (and its work was
        // never committed anyway): roll it back first, like a client
        // disconnect would.
        if db.in_transaction() {
            eprintln!("open transaction rolled back on exit");
            if let Err(e) = db.execute("ROLLBACK") {
                eprintln!("rollback failed: {e}");
            }
        }
        match db.save_to(&d) {
            Ok(()) => eprintln!("saved to {}", d.display()),
            Err(e) => eprintln!("save failed: {e}"),
        }
    }
}

/// `cstore metrics [dir]`: open the database (degraded, so recovery
/// quarantines show up), exercise a scan and one tuple-mover pass per
/// table, and dump the observability registry in Prometheus text format.
/// Without a directory a small demo star schema is used.
fn run_metrics(dir: Option<PathBuf>) {
    let db = match &dir {
        Some(d) if Database::persisted_at(d) => match Database::open_degraded(d) {
            Ok((db, _report)) => db,
            Err(e) => {
                eprintln!("failed to open {}: {e}", d.display());
                std::process::exit(1);
            }
        },
        Some(d) => {
            eprintln!("no database at {}", d.display());
            std::process::exit(1);
        }
        None => {
            let db = Database::new();
            if let Err(e) = StarSchema::scale(10_000).load_into(&db) {
                eprintln!("demo load failed: {e}");
                std::process::exit(1);
            }
            db
        }
    };
    for t in db.catalog().table_names() {
        if let Err(e) = db.execute(&format!("SELECT COUNT(*) FROM {t}")) {
            eprintln!("scan of {t} failed: {e}");
        }
        // Register a mover so its counters appear, run one pass, stop.
        if let Ok(m) = db.start_tuple_mover(&t, Duration::from_secs(3600)) {
            m.kick();
            if let Err(e) = m.stop() {
                eprintln!("tuple mover on {t}: {e}");
            }
        }
    }
    print!("{}", db.metrics());
}

/// `cstore trace dump`: trace a representative workload — demo load,
/// one query (parse/bind/plan/execute), a forced tuple-mover compression
/// pass, and one persistence save — and print the span ring as Chrome
/// trace-event JSON (load it at `chrome://tracing` or in Perfetto).
/// `cstore lint [--json]` — run the in-repo static-analysis suite
/// (L1–L8) against the workspace rooted at the current directory.
/// Exits 0 only when every finding is waived and the ratchet holds.
fn run_lint(json: bool) {
    let root = PathBuf::from(".");
    let baseline = root.join("lint-baseline.toml");
    let (violations, cmp) = match cstore_lint::run_check(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cstore lint: {e}");
            std::process::exit(2);
        }
    };
    if json {
        println!("{}", cstore_lint::render_json(&violations));
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("{} finding(s)", violations.len());
    }
    if !cmp.regressions.is_empty() {
        for (key, base, cur) in &cmp.regressions {
            eprintln!("ratchet regression {key}: baseline {base}, now {cur}");
        }
        std::process::exit(1);
    }
}

fn run_trace_dump() {
    let tracer = cstore::common::trace::global();
    tracer.enable();
    let db = Database::new();
    if let Err(e) = StarSchema::scale(10_000).load_into(&db) {
        eprintln!("demo load failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = db.execute(
        "SELECT c.region, SUM(s.quantity) AS qty FROM sales s \
         JOIN customer c ON s.cust_key = c.cust_key GROUP BY c.region",
    ) {
        eprintln!("query failed: {e}");
    }
    // Push a row through the delta store and compress it so the dump
    // contains a mover pass with a `compress_rowgroup` span.
    if let Err(e) =
        db.execute("INSERT INTO sales VALUES (99999999, DATE 15000, 1, 1, 1, 1, 9.99, NULL)")
    {
        eprintln!("insert failed: {e}");
    }
    if let cstore::TableEntry::ColumnStore(t) = db
        .catalog()
        .get("sales")
        .expect("demo schema has a sales table")
    {
        t.close_open_delta();
    }
    if let Err(e) = db.tuple_move("sales") {
        eprintln!("tuple move failed: {e}");
    }
    let mut store = cstore::storage::blob::MemBlobStore::new();
    if let Err(e) = db.save_to_store(&mut store) {
        eprintln!("save failed: {e}");
    }
    tracer.disable();
    println!("{}", tracer.dump_chrome_json());
}

/// `cstore faults list` / `\faults`: the injectable fault points a
/// `FaultInjector` recognizes, with where each one fires.
fn print_fault_points() {
    let width = cstore::common::KNOWN_FAULT_POINTS
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    for (name, desc) in cstore::common::KNOWN_FAULT_POINTS {
        println!("{name:width$}  {desc}");
    }
}

enum MetaResult {
    Continue,
    Quit,
}

fn run_meta(db: &Database, line: &str, dir: &Option<PathBuf>) -> MetaResult {
    let mut parts = line.split_whitespace();
    match parts.next().unwrap_or("") {
        "\\quit" | "\\q" => return MetaResult::Quit,
        "\\tables" => {
            for name in db.catalog().table_names() {
                println!("{name}");
            }
        }
        "\\stats" => match parts.next() {
            Some(t) => match db.table_stats(t) {
                Ok(s) => println!("{s:#?}"),
                Err(e) => eprintln!("{e}"),
            },
            None => eprintln!("usage: \\stats <table>"),
        },
        "\\metrics" => print!("{}", db.metrics()),
        "\\waits" => run_sql(db, "SELECT * FROM sys.wait_stats"),
        "\\querystore" => run_sql(db, "SELECT * FROM sys.query_store"),
        "\\faults" => print_fault_points(),
        "\\save" => match dir {
            Some(d) => match db.save_to(d) {
                Ok(()) => println!("saved to {}", d.display()),
                Err(e) => eprintln!("save failed: {e}"),
            },
            None => eprintln!("no directory: start as `cstore <dir>` to persist"),
        },
        "\\demo" => {
            let n = parts.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
            eprintln!("loading star schema with {n} fact rows…");
            match StarSchema::scale(n).load_into(db) {
                Ok(()) => eprintln!(
                    "loaded: sales, date_dim, customer, product, store — try:\n  \
                     SELECT c.region, SUM(s.quantity) AS qty FROM sales s \
                     JOIN customer c ON s.cust_key = c.cust_key GROUP BY c.region;"
                ),
                Err(e) => eprintln!("demo load failed: {e}"),
            }
        }
        "\\trace" => {
            let tracer = cstore::common::trace::global();
            match parts.next() {
                Some("on") => {
                    tracer.enable();
                    eprintln!(
                        "tracing on ({} span ring)",
                        cstore::common::trace::DEFAULT_RING_CAPACITY
                    );
                }
                Some("off") => {
                    tracer.disable();
                    eprintln!("tracing off ({} spans buffered)", tracer.len());
                }
                Some("dump") => println!("{}", tracer.dump_chrome_json()),
                _ => eprintln!("usage: \\trace on|off|dump"),
            }
        }
        other => eprintln!(
            "unknown command {other}; try \\tables \\stats \\metrics \\waits \\querystore \
             \\faults \\save \\demo \\trace \\quit"
        ),
    }
    MetaResult::Continue
}

fn run_sql(db: &Database, sql: &str) {
    match db.execute(sql) {
        Ok(result) => match &result {
            QueryResult::Rows {
                rows,
                mode,
                elapsed,
                ..
            } => {
                print!("{}", result.to_table());
                println!(
                    "({} rows, {:.2} ms, {mode:?} mode)",
                    rows.len(),
                    elapsed.as_secs_f64() * 1e3
                );
            }
            QueryResult::Affected(n) => println!("{n} rows affected"),
            QueryResult::Created => println!("ok"),
            QueryResult::Explain(text) => print!("{text}"),
            QueryResult::Txn(ack) => println!(
                "{}",
                match ack {
                    cstore::TxnAck::Begun => "transaction started",
                    cstore::TxnAck::Committed => "committed",
                    cstore::TxnAck::RolledBack => "rolled back",
                }
            ),
        },
        Err(e) => eprintln!("error: {e}"),
    }
}
