//! Trickle updates: the updatable columnstore in motion.
//!
//! Demonstrates the paper's main enhancement end to end: single-row
//! inserts flowing into delta stores, deletes marking the delete bitmap,
//! a background tuple mover compressing closed delta stores, and queries
//! staying correct (and getting faster) throughout.
//!
//! ```sh
//! cargo run --release --example trickle_updates
//! ```

use std::time::Duration;

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::Database;

fn print_stats(db: &Database, label: &str) {
    let s = db.table_stats("events").expect("stats");
    println!(
        "{label:<28} compressed={:>7} rows/{:>2} groups | delta={:>6} rows ({} open, {} closed) | deleted={}",
        s.compressed_rows,
        s.n_compressed_groups,
        s.delta_rows,
        s.n_open_deltas,
        s.n_closed_deltas,
        s.deleted_rows
    );
}

fn main() -> cstore::common::Result<()> {
    // Small delta stores so the lifecycle is visible in one run.
    let db = Database::new().with_table_config(TableConfig {
        delta_capacity: 10_000,
        bulk_load_threshold: 50_000,
        ..Default::default()
    });
    db.execute("CREATE TABLE events (id BIGINT NOT NULL, kind VARCHAR NOT NULL, amount DOUBLE)")?;

    // A historical bulk load: straight to compressed row groups.
    let history: Vec<Row> = (0..100_000)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::str(["view", "click", "buy"][(i % 3) as usize]),
                Value::Float64((i % 50) as f64),
            ])
        })
        .collect();
    db.bulk_load("events", &history)?;
    print_stats(&db, "after bulk load:");

    // Live trickle: 25k single-row inserts fill delta stores.
    for i in 100_000..125_000i64 {
        db.execute(&format!(
            "INSERT INTO events VALUES ({i}, 'click', {})",
            (i % 50) as f64
        ))?;
    }
    print_stats(&db, "after 25k trickle inserts:");

    // Deletes: compressed rows go to the delete bitmap, delta rows leave
    // their B-tree directly.
    let n = db.execute("DELETE FROM events WHERE kind = 'buy' AND id < 1000")?;
    println!("deleted {} rows", n.affected());
    print_stats(&db, "after deletes:");

    // Background tuple mover drains the closed delta stores.
    let mover = db.start_tuple_mover("events", Duration::from_millis(5))?;
    std::thread::sleep(Duration::from_millis(200));
    let moved = mover.stop()?;
    println!("tuple mover compressed {moved} delta stores");
    print_stats(&db, "after tuple mover:");

    // Queries see one consistent table throughout.
    let r = db.execute(
        "SELECT kind, COUNT(*) AS n, AVG(amount) AS avg_amount \
         FROM events GROUP BY kind ORDER BY kind",
    )?;
    println!("\n{}", r.to_table());
    Ok(())
}
