//! Quickstart: create a columnstore table, load data, query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cstore::Database;

fn main() -> cstore::common::Result<()> {
    let db = Database::new();

    // A table backed by an updatable clustered columnstore index (the
    // default organization — add `USING HEAP` for a row-store baseline).
    db.execute(
        "CREATE TABLE orders (
            order_id   BIGINT NOT NULL,
            customer   VARCHAR NOT NULL,
            amount     DECIMAL(10, 2) NOT NULL,
            placed_on  DATE NOT NULL,
            note       VARCHAR
        )",
    )?;

    // Trickle inserts land in a B-tree delta store.
    db.execute(
        "INSERT INTO orders VALUES
            (1, 'ada',   12.50, 100, NULL),
            (2, 'boole', 20.00, 100, 'gift wrap'),
            (3, 'ada',    7.25, 101, NULL),
            (4, 'curie', 99.99, 102, NULL),
            (5, 'ada',   15.00, 102, 'expedite')",
    )?;

    // Query with filters, aggregation and ordering.
    let result = db.execute(
        "SELECT customer, COUNT(*) AS orders, SUM(amount) AS total
         FROM orders
         WHERE placed_on BETWEEN 100 AND 101
         GROUP BY customer
         ORDER BY total DESC",
    )?;
    println!("{}", result.to_table());

    // Updates and deletes work against the columnstore (delete bitmap +
    // delta stores under the hood).
    db.execute("UPDATE orders SET amount = 8.00 WHERE order_id = 3")?;
    db.execute("DELETE FROM orders WHERE customer = 'curie'")?;

    let result = db.execute("SELECT COUNT(*), SUM(amount) FROM orders")?;
    println!("{}", result.to_table());

    // EXPLAIN shows the optimizer's choices: execution mode, predicate
    // pushdown, estimated cardinalities.
    let plan = db.execute("EXPLAIN SELECT customer FROM orders WHERE amount > 10.0")?;
    if let cstore::QueryResult::Explain(text) = plan {
        println!("{text}");
    }
    Ok(())
}
