//! Retail analytics: the paper's motivating workload — star-join queries
//! over a bulk-loaded warehouse, with the optimizer's decisions on show.
//!
//! ```sh
//! cargo run --release --example retail_analytics
//! ```

use cstore::workload::{queries, StarSchema};
use cstore::{Database, ExecMode, QueryResult};

fn main() -> cstore::common::Result<()> {
    // 200k-row fact table + 4 dimensions, bulk-loaded straight into
    // compressed row groups (above the direct-compress threshold).
    let star = StarSchema::scale(200_000);
    let db = Database::new();
    star.load_into(&db)?;

    let stats = db.table_stats("sales")?;
    println!(
        "loaded sales: {} compressed rows in {} row groups ({} delta rows)\n",
        stats.compressed_rows, stats.n_compressed_groups, stats.delta_rows
    );

    // Run the benchmark query set; print results for a couple of them.
    for q in queries::all() {
        let result = db.execute(q.sql)?;
        if let QueryResult::Rows {
            rows,
            mode,
            elapsed,
            ..
        } = &result
        {
            println!(
                "{}: {} rows in {:.2} ms ({mode:?} mode) — {}",
                q.id,
                rows.len(),
                elapsed.as_secs_f64() * 1e3,
                q.highlights
            );
        }
    }

    // A closer look at one query: the plan and the result.
    let sql = "SELECT c.region, SUM(s.quantity) AS qty \
               FROM sales s JOIN customer c ON s.cust_key = c.cust_key \
               WHERE s.date_key BETWEEN 90 AND 120 \
               GROUP BY c.region ORDER BY qty DESC";
    if let QueryResult::Explain(text) = db.execute(&format!("EXPLAIN {sql}"))? {
        println!("\n{text}");
    }
    println!("{}", db.execute(sql)?.to_table());

    // The same query, forced through the row-mode engine for comparison.
    let row_db = Database::new().with_exec_mode(ExecMode::Row);
    star.load_into(&row_db)?;
    let t = std::time::Instant::now();
    row_db.execute(sql)?;
    let row_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = std::time::Instant::now();
    db.execute(sql)?;
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "row mode {row_ms:.2} ms vs batch mode {batch_ms:.2} ms → {:.1}x",
        row_ms / batch_ms
    );
    Ok(())
}
