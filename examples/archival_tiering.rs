//! Archival tiering: `COLUMNSTORE_ARCHIVE` for cold data.
//!
//! A common warehouse pattern the paper's archival compression targets:
//! current data stays on the fast columnar encodings; old partitions get
//! the extra LZSS layer, trading scan CPU for storage. This example
//! splits a year of events into a hot and a cold table, archives the cold
//! one, and compares storage and query times.
//!
//! ```sh
//! cargo run --release --example archival_tiering
//! ```

use std::time::Instant;

use cstore::common::{Row, Value};
use cstore::delta::TableConfig;
use cstore::Database;

fn gen_rows(lo: i64, hi: i64) -> Vec<Row> {
    (lo..hi)
        .map(|i| {
            Row::new(vec![
                Value::Int64(i),
                Value::Date((i / 2_000) as i32),
                Value::str(["sensor-a", "sensor-b", "sensor-c"][(i % 3) as usize]),
                Value::Decimal(1000 + (i % 400)),
            ])
        })
        .collect()
}

fn time_query(db: &Database, sql: &str) -> f64 {
    let t = Instant::now();
    db.execute(sql).expect("query");
    t.elapsed().as_secs_f64() * 1e3
}

fn main() -> cstore::common::Result<()> {
    let db = Database::new().with_table_config(TableConfig {
        bulk_load_threshold: 1024,
        // Small row groups → day ranges map to groups → segment
        // elimination has something to eliminate.
        max_rowgroup_rows: 50_000,
        ..Default::default()
    });
    let ddl = |name: &str| {
        format!(
            "CREATE TABLE {name} (id BIGINT NOT NULL, day DATE NOT NULL, \
             sensor VARCHAR NOT NULL, reading DECIMAL(6, 2) NOT NULL)"
        )
    };
    db.execute(&ddl("readings_hot"))?;
    db.execute(&ddl("readings_cold"))?;

    // 300k rows of history → cold; 100k recent → hot.
    db.bulk_load("readings_cold", &gen_rows(0, 300_000))?;
    db.bulk_load("readings_hot", &gen_rows(300_000, 400_000))?;

    let size = |t: &str| db.table_stats(t).expect("stats").compressed_bytes;
    let cold_before = size("readings_cold");

    // Tier the history to archival compression.
    db.archive_table("readings_cold")?;
    let cold_after = size("readings_cold");
    println!(
        "cold tier: {} -> {} bytes ({:.2}x further reduction)",
        cold_before,
        cold_after,
        cold_before as f64 / cold_after.max(1) as f64
    );

    // Hot queries are unaffected; cold queries pay decompression.
    let hot_ms = time_query(&db, "SELECT COUNT(*), SUM(reading) FROM readings_hot");
    let cold_ms = time_query(&db, "SELECT COUNT(*), SUM(reading) FROM readings_cold");
    println!("full scan: hot tier {hot_ms:.2} ms, archived cold tier {cold_ms:.2} ms");

    // Segment elimination still works on archived data (metadata is never
    // compressed), so targeted cold queries stay cheap.
    let targeted = time_query(
        &db,
        "SELECT COUNT(*) FROM readings_cold WHERE day BETWEEN 10 AND 12",
    );
    println!("targeted cold scan (3 days): {targeted:.2} ms — elimination skips archived groups without decompressing");

    // Results are identical either way.
    let r = db.execute(
        "SELECT sensor, COUNT(*) AS n FROM readings_cold GROUP BY sensor ORDER BY sensor",
    )?;
    println!("\n{}", r.to_table());
    Ok(())
}
